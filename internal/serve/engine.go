package serve

import (
	"context"
	"math"
	"math/cmplx"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/mpde"
	"repro/internal/netlist"
	"repro/internal/shooting"
	"repro/internal/solverr"
	"repro/internal/transient"
)

// matrixFreeCutover is the bordered-system unknown count above which the
// engine switches the WaMPDE linear solves to the matrix-free spectral
// operator: below it the dense path's small factorizations are cheap (and
// bitwise-historical); above it the dense Jacobian's quadratic memory and
// cubic factorization dominate the solve. Selection depends only on the
// canonical request (grid sizes × system dimension), so a cached response
// stays a pure function of the request.
const matrixFreeCutover = 1500

// maxSeriesPoints bounds every time series in a response body. Longer runs
// are decimated with a fixed stride, so the body size (and hence the cache
// budget arithmetic) stays bounded regardless of how many steps a solve
// took.
const maxSeriesPoints = 256

// Stats are per-stage wall-clock timings of one fresh solve. They feed the
// metrics only — never the response body, which must be a pure function of
// the canonical request for the bitwise cache-identity guarantee to hold.
type Stats struct {
	BuildNS, ICNS, SolveNS int64
}

// Engine turns a canonical request into an outcome. Implementations must be
// deterministic: the same Canonical must produce a byte-identical encoded
// Outcome on every call (the engine below inherits this from the solver
// determinism contract pinned by the repository's determinism tests).
type Engine interface {
	Solve(ctx context.Context, c *Canonical) (*Outcome, Stats, error)
}

// Outcome is the analysis-specific response payload. Exactly one of the
// per-analysis fields is set. On a canceled or failed run the engine still
// returns the partial outcome computed so far (with Partial set) alongside
// the error; the error boundary embeds it in the error body.
type Outcome struct {
	Analysis    string         `json:"analysis"`
	Partial     bool           `json:"partial,omitempty"`
	Transient   *TransientOut  `json:"transient,omitempty"`
	Envelope    *EnvelopeOut   `json:"envelope,omitempty"`
	Quasi       *QuasiOut      `json:"quasiperiodic,omitempty"`
	Shooting    *ShootingOut   `json:"shooting,omitempty"`
	HB          *HBOut         `json:"hb,omitempty"`
	Supervision map[string]int `json:"supervision,omitempty"`
}

// TransientOut summarizes a transient run: the observed variable's
// decimated waveform plus the final full state.
type TransientOut struct {
	Steps int       `json:"steps"`
	TEnd  float64   `json:"t_end"`
	Var   string    `json:"var"`
	T     []float64 `json:"t"`
	X     []float64 `json:"x"`
	Final []float64 `json:"final"`
}

// EnvelopeOut summarizes an envelope-following WaMPDE run: the local
// frequency and warping phase along t2 (decimated).
type EnvelopeOut struct {
	Steps      int       `json:"steps"`
	T2         []float64 `json:"t2"`
	Omega      []float64 `json:"omega"`
	Phi        []float64 `json:"phi"`
	FinalOmega float64   `json:"final_omega"`
}

// QuasiOut summarizes a quasiperiodic WaMPDE solve.
type QuasiOut struct {
	T2Period  float64   `json:"t2_period"`
	OmegaMean float64   `json:"omega_mean"`
	Omega     []float64 `json:"omega"`
}

// ShootingOut summarizes a periodic steady state from shooting.
type ShootingOut struct {
	Period float64   `json:"period"`
	Freq   float64   `json:"freq"`
	X0     []float64 `json:"x0"`
}

// HBOut summarizes a harmonic-balance solve: the period and the magnitude
// spectrum of the observed variable's leading harmonics.
type HBOut struct {
	Period    float64   `json:"period"`
	Freq      float64   `json:"freq"`
	Harmonics []float64 `json:"harmonics"`
}

// CircuitEngine is the real engine: it builds the requested circuit and
// runs the requested analysis under the job context.
type CircuitEngine struct{}

// buildSystem compiles the canonical request's circuit.
func (CircuitEngine) buildSystem(c *Canonical) (*circuit.System, error) {
	if base, stages, _ := parseGeneratorCircuit(c.Circuit); base != "" {
		// Generator circuits: render the netlist (a DC control override flows
		// into the generated control sources) and compile it like any other.
		src, err := generatorFor(base)(stages, c.VCtlDC)
		if err != nil {
			return nil, solverr.Wrap(solverr.KindBadInput, "serve.engine", err)
		}
		ckt, err := netlist.Parse(src)
		if err != nil {
			return nil, solverr.Wrap(solverr.KindUnknown, "serve.engine", err)
		}
		sys, err := ckt.Build()
		if err != nil {
			return nil, solverr.Wrap(solverr.KindUnknown, "serve.engine", err)
		}
		return sys, nil
	}
	if base, duty, fsw, _ := parseConverterCircuit(c.Circuit); base != "" {
		src, err := converterGeneratorFor(base)(duty, fsw)
		if err != nil {
			return nil, solverr.Wrap(solverr.KindBadInput, "serve.engine", err)
		}
		ckt, err := netlist.Parse(src)
		if err != nil {
			return nil, solverr.Wrap(solverr.KindUnknown, "serve.engine", err)
		}
		sys, err := ckt.Build()
		if err != nil {
			return nil, solverr.Wrap(solverr.KindUnknown, "serve.engine", err)
		}
		return sys, nil
	}
	if c.Circuit != "" {
		p := circuit.DefaultVCOParams()
		if c.Circuit == CircuitPaperVCOAir {
			p = circuit.AirVCOParams()
		}
		if c.VCtlDC != 0 {
			// The sweep knob: freeze the control at a DC value so a family
			// of requests samples the tuning curve.
			p.VCtl = circuit.DC(c.VCtlDC)
		}
		vco, err := circuit.NewVCO(p)
		if err != nil {
			return nil, solverr.Wrap(solverr.KindBadInput, "serve.engine", err)
		}
		return vco.System, nil
	}
	ckt, err := netlist.Parse(c.Netlist)
	if err != nil {
		return nil, solverr.Wrap(solverr.KindBadInput, "serve.engine", err)
	}
	sys, err := ckt.Build()
	if err != nil {
		return nil, solverr.Wrap(solverr.KindBadInput, "serve.engine", err)
	}
	return sys, nil
}

// needsOscVar reports whether the canonical request runs an analysis that
// requires an oscillation variable (autonomous phase condition).
func (c *Canonical) needsOscVar() bool {
	if base, _, _, _ := parseConverterCircuit(c.Circuit); base != "" {
		// Converters run forced analyses only: the ripple envelope pins ω to
		// the PWM frequency, so there is no phase condition to anchor.
		return false
	}
	switch c.Analysis {
	case AnalysisEnvelope, AnalysisQuasiperiodic:
		return true
	case AnalysisShooting, AnalysisHB:
		return c.Period == 0 // autonomous variant
	}
	return false
}

// Solve implements Engine.
func (e CircuitEngine) Solve(ctx context.Context, c *Canonical) (*Outcome, Stats, error) {
	var st Stats
	t0 := time.Now()
	sys, err := e.buildSystem(c)
	st.BuildNS = time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, st, err
	}
	if c.needsOscVar() && sys.OscVar() < 0 {
		return nil, st, solverr.New(solverr.KindBadInput, "serve.engine",
			"analysis %q needs an oscillation variable ('.oscvar <node>' in the netlist)", c.Analysis)
	}
	out := &Outcome{Analysis: c.Analysis}
	switch c.Analysis {
	case AnalysisTransient:
		err = e.transient(ctx, sys, c, out)
	case AnalysisEnvelope:
		err = e.envelope(ctx, sys, c, out, &st)
	case AnalysisQuasiperiodic:
		err = e.quasiperiodic(ctx, sys, c, out, &st)
	case AnalysisShooting:
		err = e.shooting(ctx, sys, c, out)
	case AnalysisHB:
		err = e.harmonicBalance(ctx, sys, c, out)
	default:
		return nil, st, solverr.New(solverr.KindBadInput, "serve.engine", "unknown analysis %q", c.Analysis)
	}
	st.SolveNS = time.Since(t0).Nanoseconds() - st.BuildNS - st.ICNS
	if err != nil {
		if out.Transient == nil && out.Envelope == nil && out.Quasi == nil && out.Shooting == nil && out.HB == nil {
			return nil, st, err
		}
		out.Partial = true
		return out, st, err
	}
	return out, st, nil
}

// observedVar is the state the summary waveforms report: the oscillation
// variable when one is set, state 0 otherwise.
func observedVar(sys *circuit.System) int {
	if k := sys.OscVar(); k >= 0 {
		return k
	}
	return 0
}

func (CircuitEngine) transient(ctx context.Context, sys *circuit.System, c *Canonical, out *Outcome) error {
	x := make([]float64, sys.Dim())
	opt := transient.Options{Method: transient.Trap, H: c.H, Ctx: ctx}
	if base, _, _, _ := parseConverterCircuit(c.Circuit); base != "" {
		// Converter transients integrate the start-up from the zero state —
		// the catalog workload — with BDF2: the trapezoidal rule has no
		// damping on algebraic constraint rows, so from an inconsistent zero
		// start the source-node rows ring undamped for the whole run, while
		// BDF2 bootstraps with one L-stable BE step and kills the
		// inconsistency immediately. The relaxed Newton tolerance matches
		// the attainable residual floor of a zero-state switched start (see
		// transient.ConverterNewton).
		opt.Method = transient.BDF2
		opt.Newton = transient.ConverterNewton
	} else if err := transient.DCOperatingPoint(sys, 0, x, transient.DCOptions{}); err != nil {
		return err
	}
	res, err := transient.Simulate(sys, x, 0, c.TStop, opt)
	if res == nil || len(res.T) == 0 {
		return err
	}
	k := observedVar(sys)
	idx := decimate(len(res.T))
	to := &TransientOut{
		Steps: len(res.T) - 1,
		TEnd:  res.T[len(res.T)-1],
		Var:   sys.StateName(k),
		T:     make([]float64, len(idx)),
		X:     make([]float64, len(idx)),
		Final: append([]float64(nil), res.X[len(res.X)-1]...),
	}
	for i, j := range idx {
		to.T[i] = res.T[j]
		to.X[i] = res.X[j][k]
	}
	out.Transient = to
	return err
}

// initialCondition runs the standard envelope preamble: DC operating point,
// a kick off the equilibrium, then settle + autonomous shooting onto the
// limit cycle.
func (CircuitEngine) initialCondition(ctx context.Context, sys *circuit.System, n1 int, f0 float64) (xhat0 []float64, omega0 float64, err error) {
	xg := make([]float64, sys.Dim())
	if err := transient.DCOperatingPoint(sys, 0, xg, transient.DCOptions{}); err != nil {
		return nil, 0, err
	}
	xg[sys.OscVar()] += 0.5
	return core.InitialCondition(sys, xg, 1/f0, core.ICOptions{
		N1:       n1,
		Shooting: shooting.Options{Ctx: ctx},
	})
}

// rippleEnvelope is the converter envelope path: the forced (unwarped) MPDE
// with ω pinned to the PWM switching frequency, integrated from the zero
// state — the start-up ripple envelope. There is no initial-condition
// preamble (the PWM input pins the fast phase; there is no limit cycle to
// land on) and no matrix-free cutover: the t1-averaged harmonic
// preconditioner that makes GMRES effective on smooth VCO waveforms is a
// poor match for a switched circuit's seven-decade conductance swings, so
// converters always take the dense path (their bordered systems are small).
func (CircuitEngine) rippleEnvelope(ctx context.Context, sys *circuit.System, c *Canonical, fsw float64, out *Outcome) error {
	opt := mpde.RippleOptions(c.N1, fsw, 1)
	opt.H2 = c.TStop / float64(c.Steps)
	opt.Ctx = ctx
	res, err := mpde.RippleEnvelope(sys, make([]float64, c.N1*sys.Dim()), fsw, c.TStop, opt)
	if res == nil || len(res.T2) == 0 {
		return err
	}
	idx := decimate(len(res.T2))
	eo := &EnvelopeOut{
		Steps:      len(res.T2) - 1,
		T2:         make([]float64, len(idx)),
		Omega:      make([]float64, len(idx)),
		Phi:        make([]float64, len(idx)),
		FinalOmega: res.Omega[len(res.Omega)-1],
	}
	for i, j := range idx {
		eo.T2[i] = res.T2[j]
		eo.Omega[i] = res.Omega[j]
		eo.Phi[i] = res.Phi[j]
	}
	out.Envelope = eo
	out.Supervision = envelopeSupervision(res)
	return err
}

func (e CircuitEngine) envelope(ctx context.Context, sys *circuit.System, c *Canonical, out *Outcome, st *Stats) error {
	if base, _, fsw, _ := parseConverterCircuit(c.Circuit); base != "" {
		return e.rippleEnvelope(ctx, sys, c, fsw, out)
	}
	t0 := time.Now()
	xhat0, omega0, err := e.initialCondition(ctx, sys, c.N1, c.F0)
	st.ICNS = time.Since(t0).Nanoseconds()
	if err != nil {
		return err
	}
	eopt := core.EnvelopeOptions{
		N1: c.N1, H2: c.TStop / float64(c.Steps), Trap: true, Ctx: ctx,
	}
	if c.N1*sys.Dim()+1 > matrixFreeCutover {
		eopt.Linear = core.LinearMatrixFree
	}
	res, err := core.Envelope(sys, xhat0, omega0, c.TStop, eopt)
	if res == nil || len(res.T2) == 0 {
		return err
	}
	idx := decimate(len(res.T2))
	eo := &EnvelopeOut{
		Steps:      len(res.T2) - 1,
		T2:         make([]float64, len(idx)),
		Omega:      make([]float64, len(idx)),
		Phi:        make([]float64, len(idx)),
		FinalOmega: res.Omega[len(res.Omega)-1],
	}
	for i, j := range idx {
		eo.T2[i] = res.T2[j]
		eo.Omega[i] = res.Omega[j]
		eo.Phi[i] = res.Phi[j]
	}
	out.Envelope = eo
	out.Supervision = envelopeSupervision(res)
	return err
}

func (e CircuitEngine) quasiperiodic(ctx context.Context, sys *circuit.System, c *Canonical, out *Outcome, st *Stats) error {
	t0 := time.Now()
	xhat0, omega0, err := e.initialCondition(ctx, sys, c.N1, c.F0)
	st.ICNS = time.Since(t0).Nanoseconds()
	if err != nil {
		return err
	}
	// Seed the global quasiperiodic solve from one control period of
	// envelope following — the standard bootstrap (§4.1's natural initial
	// condition extended along t2).
	eopt := core.EnvelopeOptions{
		N1: c.N1, H2: c.Period / 100, Trap: true, Ctx: ctx,
	}
	if c.N1*sys.Dim()+1 > matrixFreeCutover {
		eopt.Linear = core.LinearMatrixFree
	}
	env, err := core.Envelope(sys, xhat0, omega0, c.Period, eopt)
	if err != nil {
		return err
	}
	guess, err := core.GuessFromEnvelope(env, c.Period, c.N1, c.N2)
	if err != nil {
		return err
	}
	qopt := core.QPOptions{N1: c.N1, N2: c.N2, Ctx: ctx}
	if c.N1*c.N2*sys.Dim()+c.N2 > matrixFreeCutover {
		qopt.Linear = core.LinearMatrixFree
	}
	res, err := core.Quasiperiodic(sys, c.Period, guess, qopt)
	if res == nil || len(res.Omega) == 0 {
		return err
	}
	out.Quasi = &QuasiOut{
		T2Period:  res.T2,
		OmegaMean: res.OmegaMean(),
		Omega:     append([]float64(nil), res.Omega...),
	}
	out.Supervision = qpSupervision(res)
	return err
}

func (CircuitEngine) shooting(ctx context.Context, sys *circuit.System, c *Canonical, out *Outcome) error {
	x := make([]float64, sys.Dim())
	if err := transient.DCOperatingPoint(sys, 0, x, transient.DCOptions{}); err != nil {
		return err
	}
	var pss *shooting.PSS
	var err error
	if c.Period > 0 {
		pss, err = shooting.Forced(sys, x, c.Period, shooting.Options{Method: transient.Trap, Ctx: ctx})
	} else {
		pss, err = settleAndShoot(ctx, sys, x, 1/c.F0)
	}
	if err != nil {
		return err
	}
	out.Shooting = &ShootingOut{
		Period: pss.T,
		Freq:   1 / pss.T,
		X0:     append([]float64(nil), pss.X0...),
	}
	return nil
}

// settleAndShoot kicks the oscillation variable, settles onto the limit
// cycle by transient integration of the frozen-input system, and sharpens
// with autonomous shooting (the same preamble core.InitialCondition uses).
func settleAndShoot(ctx context.Context, sys *circuit.System, x []float64, tGuess float64) (*shooting.PSS, error) {
	xg := append([]float64(nil), x...)
	xg[sys.OscVar()] += 0.5
	frozen := shooting.Freeze(sys, 0)
	settle, err := transient.Simulate(frozen, xg, 0, 20*tGuess,
		transient.Options{Method: transient.Trap, H: tGuess / 128, Ctx: ctx})
	if err != nil {
		return nil, err
	}
	return shooting.Autonomous(sys, settle.X[len(settle.X)-1], tGuess, shooting.Options{Ctx: ctx})
}

func (CircuitEngine) harmonicBalance(ctx context.Context, sys *circuit.System, c *Canonical, out *Outcome) error {
	var sol *hb.Solution
	if c.Period > 0 {
		var err error
		sol, err = hb.Forced(sys, c.Period, nil, hb.Options{N: c.NHarm, Damping: true})
		if err != nil {
			return err
		}
	} else {
		// Autonomous HB needs a non-trivial seed or Newton lands on the
		// equilibrium; seed from a shooting orbit (cancelable), then polish
		// in the frequency domain.
		x := make([]float64, sys.Dim())
		if err := transient.DCOperatingPoint(sys, 0, x, transient.DCOptions{}); err != nil {
			return err
		}
		pss, err := settleAndShoot(ctx, sys, x, 1/c.F0)
		if err != nil {
			return err
		}
		guess := make([][]float64, c.NHarm)
		n := sys.Dim()
		for j := 0; j < c.NHarm; j++ {
			tt := pss.T * float64(j) / float64(c.NHarm)
			row := make([]float64, n)
			for i := 0; i < n; i++ {
				row[i] = pss.Orbit.At(tt, i)
			}
			guess[j] = row
		}
		sol, err = hb.Autonomous(sys, pss.T, guess, hb.Options{N: c.NHarm, Damping: true})
		if err != nil {
			return err
		}
	}
	k := observedVar(sys)
	harm := sol.Harmonics(k)
	nh := len(harm)/2 + 1
	if nh > 8 {
		nh = 8
	}
	mags := make([]float64, nh)
	for h := 0; h < nh; h++ {
		mags[h] = cmplx.Abs(harm[h])
	}
	out.HB = &HBOut{Period: sol.T, Freq: 1 / sol.T, Harmonics: mags}
	return nil
}

// decimate returns ≤ maxSeriesPoints indices into a series of length n,
// always including the first and last points, with a fixed stride in
// between (deterministic for a given n).
func decimate(n int) []int {
	if n <= maxSeriesPoints {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	stride := int(math.Ceil(float64(n-1) / float64(maxSeriesPoints-1)))
	idx := make([]int, 0, maxSeriesPoints)
	for j := 0; j < n-1; j += stride {
		idx = append(idx, j)
	}
	return append(idx, n-1)
}

// envelopeSupervision flattens the envelope run's supervision counters for
// the response body. Only non-zero counters are emitted (the common
// all-converged case reports an empty map, elided by omitempty).
func envelopeSupervision(r *core.EnvelopeResult) map[string]int {
	return prune(map[string]int{
		"newton_iter_total":        r.NewtonIterTotal,
		"linear_solves":            r.LinearSolves,
		"rejected_steps":           r.Rejected,
		"jacobian_evals":           r.JacobianEvals,
		"jacobian_reuses":          r.JacobianReuses,
		"gmres_stagnations":        r.GMRESStagnations,
		"gmres_breakdowns":         r.GMRESBreakdowns,
		"linear_gmres_rescues":     r.LinearGMRESRescues,
		"linear_lu_rescues":        r.LinearLURescues,
		"linear_sparse_lu_rescues": r.LinearSparseLURescues,
		"full_newton_rescues":      r.FullNewtonRescues,
		"damped_newton_rescues":    r.DampedNewtonRescues,
		"continuation_rescues":     r.ContinuationRescues,
		"step_halvings":            r.StepHalvings,
	})
}

func qpSupervision(r *core.QPResult) map[string]int {
	return prune(map[string]int{
		"newton_iter_total":        r.NewtonIterTotal,
		"jacobian_evals":           r.JacobianEvals,
		"jacobian_reuses":          r.JacobianReuses,
		"gmres_stagnations":        r.GMRESStagnations,
		"gmres_breakdowns":         r.GMRESBreakdowns,
		"linear_gmres_rescues":     r.LinearGMRESRescues,
		"linear_lu_rescues":        r.LinearLURescues,
		"linear_sparse_lu_rescues": r.LinearSparseLURescues,
		"full_newton_rescues":      r.FullNewtonRescues,
		"damped_newton_rescues":    r.DampedNewtonRescues,
		"continuation_rescues":     r.ContinuationRescues,
	})
}

func prune(m map[string]int) map[string]int {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
	if len(m) == 0 {
		return nil
	}
	return m
}
