// Package serve is the simulation service subsystem: it turns the
// in-process analyses (envelope WaMPDE, quasiperiodic, transient, shooting,
// harmonic balance) into an HTTP job API suitable for the parameter-sweep
// workloads the MPDE literature motivates — many near-identical requests
// over netlist/tuning-voltage variants, which deduplication and caching
// turn from O(requests) into O(distinct solves).
//
// The pieces, each in its own file:
//
//   - request.go: the canonical request model. A request names a circuit
//     (inline netlist or a named paper circuit), an analysis kind and its
//     options; Canonicalize validates it, applies the engine defaults and
//     produces a deterministic canonical encoding whose SHA-256 is the
//     request's content address. Two requests that differ only in spelled-
//     out defaults hash identically, so the cache coheres across clients.
//   - scheduler.go: a bounded job scheduler — fixed worker budget layered
//     on internal/par, bounded queue, non-blocking admission. A saturated
//     queue rejects instead of queueing unboundedly (HTTP 429 with
//     Retry-After); each admitted job carries a deadline context that flows
//     into the solver cancellation path, so a killed request still returns
//     the partial result computed before the deadline.
//   - cache.go + flight.go: a single-flight, content-addressed result
//     cache. Duplicate in-flight requests coalesce onto one engine solve;
//     completed successes land in a byte-budgeted LRU. Cached and fresh
//     responses are bitwise identical (the engine's determinism guarantee,
//     pinned end to end by the repository's determinism tests).
//   - engine.go: the real engine adapter — builds the circuit, runs the
//     analysis under the job context, reports stage timings, and encodes
//     the outcome as deterministic JSON.
//   - errors.go: the error boundary mapping solverr kinds to HTTP statuses
//     (canceled→408, budget→422, bad input→400, exhausted-ladder solver
//     failures→500 carrying the recovery trail as structured JSON).
//   - metrics.go + server.go: expvar-style observability (queue depth,
//     admissions/rejections, cache hits, in-flight, per-stage solve
//     latencies), net/http/pprof behind a debug flag, and the HTTP surface
//     itself.
//   - sweepreq.go + sweep.go + checkpoint.go: the /v1/sweep batch surface —
//     a whole parameter sweep as one streaming NDJSON job, each point
//     sharing the single-solve content-addressed cache byte for byte, with
//     server-side checkpoints so an interrupted sweep resumes instead of
//     re-solving.
//   - store.go: the disk-backed second cache tier — an append-only segment
//     store of checksummed, length-prefixed records keyed by content hash,
//     reloaded into an index on boot with torn-tail detection, so solved
//     results survive restarts; a byte cap GCs whole cold segments when
//     the tier outgrows its budget.
//   - shard.go + cluster.go: cluster routing — consistent-hash ownership
//     of content hashes (order-independent, virtual nodes, R owners per
//     hash), bounded HTTP forwarding to the owners in ring order so
//     single-flight dedup is cluster-wide (bounded transport retries,
//     failover across replica owners, local-solve fallback when all are
//     down), and the boot-time prewarm pass that solves the named paper
//     circuits when absent (and, via /healthz readiness, self-checks the
//     disk tier after a restart).
//   - replicate.go: R-way write-through — every fresh solve is queued to
//     the hash's other owners over a bounded async queue and verified
//     (hash + CRC) before the receiver persists it, so any single node can
//     die without losing cached bytes.
//   - membership.go: dynamic membership — epoch-stamped views merged as a
//     semilattice, heartbeat gossip, and the -join path that admits a new
//     node through a seed without a coordinator.
//   - handoff.go: join-time rebalancing — the joiner streams exactly its
//     consistent-hash share out of the existing owners' disk stores as
//     CRC-framed records, verified per record before persisting.
//   - breaker.go: failure detection — a per-peer circuit breaker
//     (threshold/cooldown/half-open probe) plus capped, deterministically
//     jittered exponential backoff shared by the forwarding and
//     replication retry paths.
//
// cmd/wampde-server serves this package; cmd/wampde-load is the
// deterministic closed-loop load generator that benchmarks it (and, with
// -cluster, drives the self-healing cluster gates behind ./ci.sh cluster).
package serve
