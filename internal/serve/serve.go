// Package serve is the simulation service subsystem: it turns the
// in-process analyses (envelope WaMPDE, quasiperiodic, transient, shooting,
// harmonic balance) into an HTTP job API suitable for the parameter-sweep
// workloads the MPDE literature motivates — many near-identical requests
// over netlist/tuning-voltage variants, which deduplication and caching
// turn from O(requests) into O(distinct solves).
//
// The pieces, each in its own file:
//
//   - request.go: the canonical request model. A request names a circuit
//     (inline netlist or a named paper circuit), an analysis kind and its
//     options; Canonicalize validates it, applies the engine defaults and
//     produces a deterministic canonical encoding whose SHA-256 is the
//     request's content address. Two requests that differ only in spelled-
//     out defaults hash identically, so the cache coheres across clients.
//   - scheduler.go: a bounded job scheduler — fixed worker budget layered
//     on internal/par, bounded queue, non-blocking admission. A saturated
//     queue rejects instead of queueing unboundedly (HTTP 429 with
//     Retry-After); each admitted job carries a deadline context that flows
//     into the solver cancellation path, so a killed request still returns
//     the partial result computed before the deadline.
//   - cache.go + flight.go: a single-flight, content-addressed result
//     cache. Duplicate in-flight requests coalesce onto one engine solve;
//     completed successes land in a byte-budgeted LRU. Cached and fresh
//     responses are bitwise identical (the engine's determinism guarantee,
//     pinned end to end by the repository's determinism tests).
//   - engine.go: the real engine adapter — builds the circuit, runs the
//     analysis under the job context, reports stage timings, and encodes
//     the outcome as deterministic JSON.
//   - errors.go: the error boundary mapping solverr kinds to HTTP statuses
//     (canceled→408, budget→422, bad input→400, exhausted-ladder solver
//     failures→500 carrying the recovery trail as structured JSON).
//   - metrics.go + server.go: expvar-style observability (queue depth,
//     admissions/rejections, cache hits, in-flight, per-stage solve
//     latencies), net/http/pprof behind a debug flag, and the HTTP surface
//     itself.
//   - store.go: the disk-backed second cache tier — an append-only segment
//     store of checksummed, length-prefixed records keyed by content hash,
//     reloaded into an index on boot with torn-tail detection, so solved
//     results survive restarts.
//   - shard.go + cluster.go: cluster mode — consistent-hash ownership of
//     content hashes over a static peer list (order-independent, virtual
//     nodes), bounded HTTP forwarding to the hash owner so single-flight
//     dedup is cluster-wide (retry-once on transport failure, local-solve
//     fallback when the owner is down), and the boot-time prewarm pass
//     that solves the named paper circuits when absent (and, via /healthz
//     readiness, self-checks the disk tier after a restart).
//
// cmd/wampde-server serves this package; cmd/wampde-load is the
// deterministic closed-loop load generator that benchmarks it (and, with
// -cluster, drives the 3-node gates behind ./ci.sh cluster).
package serve
