package serve

import "sync"

// flightResult is what a completed flight delivers to every joined caller:
// the exact response (status + body) the leader computed. Followers replay
// it verbatim, so N coalesced requests receive N bitwise-identical bodies
// from one engine solve.
type flightResult struct {
	status int
	body   []byte
}

// flight is one in-progress solve for a canonical hash.
type flight struct {
	done chan struct{}
	res  flightResult
}

// flightGroup coalesces duplicate in-flight requests: the first caller for
// a hash becomes the leader (runs the solve), later callers for the same
// hash become followers (wait for the leader's result). Unlike the cache,
// the group holds results only for the duration of the flight — completed
// flights are forgotten immediately, and it is the cache's job to remember
// successes.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	m       *Metrics
}

func newFlightGroup(m *Metrics) *flightGroup {
	if m == nil {
		m = NewMetrics()
	}
	return &flightGroup{flights: make(map[string]*flight), m: m}
}

// join registers interest in hash. If a flight is already up, it is
// returned with leader=false and the caller must wait on f.done. Otherwise
// a new flight is created and the caller is its leader: it must eventually
// call complete (even on error paths), or followers block forever.
func (g *flightGroup) join(hash string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[hash]; ok {
		g.m.Coalesced.Add(1)
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[hash] = f
	return f, true
}

// complete publishes the leader's result to all followers and retires the
// flight. Callers that join after complete start a fresh flight (they will
// normally hit the cache first).
func (g *flightGroup) complete(hash string, f *flight, res flightResult) {
	g.mu.Lock()
	delete(g.flights, hash)
	g.mu.Unlock()
	f.res = res
	close(f.done)
}
