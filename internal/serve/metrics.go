package serve

import (
	"expvar"
	"sync/atomic"
)

// Metrics is the service's counter set. Counters are plain atomics rather
// than expvar variables so that tests can construct any number of servers
// without tripping expvar's duplicate-name panic; PublishExpvar exports one
// chosen instance process-wide (cmd/wampde-server does this once).
type Metrics struct {
	QueueDepth atomic.Int64 // tasks admitted but not yet started
	InFlight   atomic.Int64 // engine solves currently running
	Admitted   atomic.Int64 // jobs accepted by the scheduler
	Rejected   atomic.Int64 // jobs refused with ErrSaturated (HTTP 429)

	CacheHits      atomic.Int64 // responses served from the result cache
	CacheMisses    atomic.Int64 // cache lookups that missed
	CacheEvictions atomic.Int64 // LRU evictions under the byte budget
	Coalesced      atomic.Int64 // requests that joined an in-flight solve

	Requests  atomic.Int64 // requests reaching the simulate handler
	BadInput  atomic.Int64 // 400s (decode/validation failures)
	Canceled  atomic.Int64 // 408s (deadline exceeded)
	Failed    atomic.Int64 // 5xx engine failures
	Succeeded atomic.Int64 // 200s (fresh, cached, or coalesced)

	// Sweep-job accounting. Per-point counters classify how each planned
	// point was produced; a point served from the result cache or a joined
	// flight deliberately does not count toward the single-request
	// CacheHits/Coalesced columns (those measure /v1/simulate traffic).
	SweepRequests        atomic.Int64 // requests reaching the sweep handler
	SweepPoints          atomic.Int64 // points entering the per-point solve path
	SweepPointsSolved    atomic.Int64 // fresh engine solves
	SweepPointsCached    atomic.Int64 // served from the result cache
	SweepPointsCoalesced atomic.Int64 // joined an in-flight solve
	SweepPointsReplayed  atomic.Int64 // replayed from a resume checkpoint
	SweepPointsFailed    atomic.Int64 // error records streamed
	SweepCompleted       atomic.Int64 // sweeps that streamed their trailer clean
	SweepCanceled        atomic.Int64 // sweeps cut by deadline or client hangup

	// Cluster forwarding. Attempts count decisions to proxy a request to
	// its hash owner; OK means the owner answered (any status), Retries
	// count second attempts after a transport failure, and Fallbacks are
	// the degradation path — the owner stayed unreachable and the request
	// was solved locally instead. ForwardedIn counts requests this node
	// received as a hash owner from a peer.
	ForwardAttempts  atomic.Int64
	ForwardOK        atomic.Int64
	ForwardRetries   atomic.Int64
	ForwardFallbacks atomic.Int64
	ForwardedIn      atomic.Int64
	ForwardNS        atomic.Int64 // total wall time spent proxying (latency numerator)

	// Disk cache tier (the append-only segment store). DiskRecords and
	// DiskBytes are gauges of the indexed store contents; DiskDropped
	// counts corrupt or truncated records discarded at load or read time.
	DiskHits    atomic.Int64 // lookups served from disk (and promoted to memory)
	DiskPuts    atomic.Int64 // records appended
	DiskErrors  atomic.Int64 // failed appends (the solve still succeeds)
	DiskDropped atomic.Int64
	DiskRecords atomic.Int64
	DiskBytes   atomic.Int64

	// Replication write-through. Enqueued counts per-target pushes accepted
	// into the bounded queue, QueueFull the pushes dropped at a full queue,
	// Sent/Retries/Failed the delivery outcomes, and Received/Rejected/
	// Bytes the receiver side (Rejected = CRC or bounds failures, counted
	// on whichever side detected them). QueueDepth is the live gauge the
	// harness drains on (enqueued == sent + failed when empty).
	ReplEnqueued   atomic.Int64
	ReplQueueFull  atomic.Int64
	ReplQueueDepth atomic.Int64
	ReplSent       atomic.Int64
	ReplRetries    atomic.Int64
	ReplFailed     atomic.Int64
	ReplReceived   atomic.Int64
	ReplRejected   atomic.Int64
	ReplBytes      atomic.Int64

	// Membership. Epoch/Nodes are gauges of the current view; Joins counts
	// join requests this node admitted as a seed, Merges the times a
	// received view changed the local one, Heartbeats/HeartbeatMisses the
	// exchange attempts and their transport failures (misses also count
	// failed join and handoff exchanges).
	MemberEpoch           atomic.Int64
	MemberNodes           atomic.Int64
	MemberJoins           atomic.Int64
	MemberMerges          atomic.Int64
	MemberHeartbeats      atomic.Int64
	MemberHeartbeatMisses atomic.Int64

	// Per-peer circuit breakers. Opens counts closed/half-open → open
	// transitions, ShortCircuits the requests skipped while open, Probes
	// the half-open trial requests, Closes the recoveries.
	BreakerOpens         atomic.Int64
	BreakerShortCircuits atomic.Int64
	BreakerProbes        atomic.Int64
	BreakerCloses        atomic.Int64

	// Join handoff. Pulls counts handoff requests served (sender side);
	// KeysSent/Bytes what this node streamed out; KeysReceived the distinct
	// records this node applied from pulls (duplicates already present are
	// not counted, so the gauge equals the moved-key share); Rejected the
	// records that failed CRC or bounds on receipt.
	HandoffPulls        atomic.Int64
	HandoffKeysSent     atomic.Int64
	HandoffKeysReceived atomic.Int64
	HandoffRejected     atomic.Int64
	HandoffBytes        atomic.Int64

	// Disk-tier segment GC under the byte cap: runs (Put-triggered GC
	// passes that evicted at least one segment), segments/records evicted,
	// and file bytes reclaimed.
	DiskGCRuns     atomic.Int64
	DiskGCSegments atomic.Int64
	DiskGCRecords  atomic.Int64
	DiskGCBytes    atomic.Int64

	// Boot-time prewarm accounting: entries solved fresh vs found already
	// present in a cache tier (after a restart onto a warm disk store, the
	// whole set skips).
	PrewarmSolved  atomic.Int64
	PrewarmSkipped atomic.Int64

	// Per-stage solve time, nanoseconds, accumulated over fresh solves:
	// build (circuit construction), ic (DC + settle + shooting initial
	// condition), solve (the analysis proper), encode (response encoding).
	BuildNS  atomic.Int64
	ICNS     atomic.Int64
	SolveNS  atomic.Int64
	EncodeNS atomic.Int64
	Solves   atomic.Int64 // fresh engine solves (latency denominators)
}

// NewMetrics returns a zeroed counter set.
func NewMetrics() *Metrics { return &Metrics{} }

// Snapshot returns the counters as a plain map, the payload of the
// /metrics endpoint. Reads are individually atomic (the set is not a
// consistent cut, which is fine for monitoring).
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"queue_depth":             m.QueueDepth.Load(),
		"in_flight":               m.InFlight.Load(),
		"admitted":                m.Admitted.Load(),
		"rejected":                m.Rejected.Load(),
		"cache_hits":              m.CacheHits.Load(),
		"cache_misses":            m.CacheMisses.Load(),
		"cache_evictions":         m.CacheEvictions.Load(),
		"coalesced":               m.Coalesced.Load(),
		"requests":                m.Requests.Load(),
		"bad_input":               m.BadInput.Load(),
		"canceled":                m.Canceled.Load(),
		"failed":                  m.Failed.Load(),
		"succeeded":               m.Succeeded.Load(),
		"sweep_requests":          m.SweepRequests.Load(),
		"sweep_points":            m.SweepPoints.Load(),
		"sweep_points_solved":     m.SweepPointsSolved.Load(),
		"sweep_points_cached":     m.SweepPointsCached.Load(),
		"sweep_points_coalesced":  m.SweepPointsCoalesced.Load(),
		"sweep_points_replayed":   m.SweepPointsReplayed.Load(),
		"sweep_points_failed":     m.SweepPointsFailed.Load(),
		"sweep_completed":         m.SweepCompleted.Load(),
		"sweep_canceled":          m.SweepCanceled.Load(),
		"forward_attempts":        m.ForwardAttempts.Load(),
		"forward_ok":              m.ForwardOK.Load(),
		"forward_retries":         m.ForwardRetries.Load(),
		"forward_fallbacks":       m.ForwardFallbacks.Load(),
		"forwarded_in":            m.ForwardedIn.Load(),
		"forward_ns":              m.ForwardNS.Load(),
		"repl_enqueued":           m.ReplEnqueued.Load(),
		"repl_queue_full":         m.ReplQueueFull.Load(),
		"repl_queue_depth":        m.ReplQueueDepth.Load(),
		"repl_sent":               m.ReplSent.Load(),
		"repl_retries":            m.ReplRetries.Load(),
		"repl_failed":             m.ReplFailed.Load(),
		"repl_received":           m.ReplReceived.Load(),
		"repl_rejected":           m.ReplRejected.Load(),
		"repl_bytes":              m.ReplBytes.Load(),
		"member_epoch":            m.MemberEpoch.Load(),
		"member_nodes":            m.MemberNodes.Load(),
		"member_joins":            m.MemberJoins.Load(),
		"member_merges":           m.MemberMerges.Load(),
		"member_heartbeats":       m.MemberHeartbeats.Load(),
		"member_heartbeat_misses": m.MemberHeartbeatMisses.Load(),
		"breaker_opens":           m.BreakerOpens.Load(),
		"breaker_short_circuits":  m.BreakerShortCircuits.Load(),
		"breaker_probes":          m.BreakerProbes.Load(),
		"breaker_closes":          m.BreakerCloses.Load(),
		"handoff_pulls":           m.HandoffPulls.Load(),
		"handoff_keys_sent":       m.HandoffKeysSent.Load(),
		"handoff_keys_received":   m.HandoffKeysReceived.Load(),
		"handoff_rejected":        m.HandoffRejected.Load(),
		"handoff_bytes":           m.HandoffBytes.Load(),
		"disk_gc_runs":            m.DiskGCRuns.Load(),
		"disk_gc_segments":        m.DiskGCSegments.Load(),
		"disk_gc_records":         m.DiskGCRecords.Load(),
		"disk_gc_bytes":           m.DiskGCBytes.Load(),
		"disk_hits":               m.DiskHits.Load(),
		"disk_puts":               m.DiskPuts.Load(),
		"disk_errors":             m.DiskErrors.Load(),
		"disk_dropped":            m.DiskDropped.Load(),
		"disk_records":            m.DiskRecords.Load(),
		"disk_bytes":              m.DiskBytes.Load(),
		"prewarm_solved":          m.PrewarmSolved.Load(),
		"prewarm_skipped":         m.PrewarmSkipped.Load(),
		"build_ns":                m.BuildNS.Load(),
		"ic_ns":                   m.ICNS.Load(),
		"solve_ns":                m.SolveNS.Load(),
		"encode_ns":               m.EncodeNS.Load(),
		"solves":                  m.Solves.Load(),
	}
}

// PublishExpvar exports this counter set under the expvar name
// "wampde_serve". expvar panics on duplicate names, so call this at most
// once per process (cmd/wampde-server guards it with sync.Once; tests use
// the per-server /metrics endpoint instead).
func (m *Metrics) PublishExpvar() {
	expvar.Publish("wampde_serve", expvar.Func(func() any { return m.Snapshot() }))
}
