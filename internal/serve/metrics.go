package serve

import (
	"expvar"
	"sync/atomic"
)

// Metrics is the service's counter set. Counters are plain atomics rather
// than expvar variables so that tests can construct any number of servers
// without tripping expvar's duplicate-name panic; PublishExpvar exports one
// chosen instance process-wide (cmd/wampde-server does this once).
type Metrics struct {
	QueueDepth atomic.Int64 // tasks admitted but not yet started
	InFlight   atomic.Int64 // engine solves currently running
	Admitted   atomic.Int64 // jobs accepted by the scheduler
	Rejected   atomic.Int64 // jobs refused with ErrSaturated (HTTP 429)

	CacheHits      atomic.Int64 // responses served from the result cache
	CacheMisses    atomic.Int64 // cache lookups that missed
	CacheEvictions atomic.Int64 // LRU evictions under the byte budget
	Coalesced      atomic.Int64 // requests that joined an in-flight solve

	Requests  atomic.Int64 // requests reaching the simulate handler
	BadInput  atomic.Int64 // 400s (decode/validation failures)
	Canceled  atomic.Int64 // 408s (deadline exceeded)
	Failed    atomic.Int64 // 5xx engine failures
	Succeeded atomic.Int64 // 200s (fresh, cached, or coalesced)

	// Sweep-job accounting. Per-point counters classify how each planned
	// point was produced; a point served from the result cache or a joined
	// flight deliberately does not count toward the single-request
	// CacheHits/Coalesced columns (those measure /v1/simulate traffic).
	SweepRequests        atomic.Int64 // requests reaching the sweep handler
	SweepPoints          atomic.Int64 // points entering the per-point solve path
	SweepPointsSolved    atomic.Int64 // fresh engine solves
	SweepPointsCached    atomic.Int64 // served from the result cache
	SweepPointsCoalesced atomic.Int64 // joined an in-flight solve
	SweepPointsReplayed  atomic.Int64 // replayed from a resume checkpoint
	SweepPointsFailed    atomic.Int64 // error records streamed
	SweepCompleted       atomic.Int64 // sweeps that streamed their trailer clean
	SweepCanceled        atomic.Int64 // sweeps cut by deadline or client hangup

	// Cluster forwarding. Attempts count decisions to proxy a request to
	// its hash owner; OK means the owner answered (any status), Retries
	// count second attempts after a transport failure, and Fallbacks are
	// the degradation path — the owner stayed unreachable and the request
	// was solved locally instead. ForwardedIn counts requests this node
	// received as a hash owner from a peer.
	ForwardAttempts  atomic.Int64
	ForwardOK        atomic.Int64
	ForwardRetries   atomic.Int64
	ForwardFallbacks atomic.Int64
	ForwardedIn      atomic.Int64
	ForwardNS        atomic.Int64 // total wall time spent proxying (latency numerator)

	// Disk cache tier (the append-only segment store). DiskRecords and
	// DiskBytes are gauges of the indexed store contents; DiskDropped
	// counts corrupt or truncated records discarded at load or read time.
	DiskHits    atomic.Int64 // lookups served from disk (and promoted to memory)
	DiskPuts    atomic.Int64 // records appended
	DiskErrors  atomic.Int64 // failed appends (the solve still succeeds)
	DiskDropped atomic.Int64
	DiskRecords atomic.Int64
	DiskBytes   atomic.Int64

	// Boot-time prewarm accounting: entries solved fresh vs found already
	// present in a cache tier (after a restart onto a warm disk store, the
	// whole set skips).
	PrewarmSolved  atomic.Int64
	PrewarmSkipped atomic.Int64

	// Per-stage solve time, nanoseconds, accumulated over fresh solves:
	// build (circuit construction), ic (DC + settle + shooting initial
	// condition), solve (the analysis proper), encode (response encoding).
	BuildNS  atomic.Int64
	ICNS     atomic.Int64
	SolveNS  atomic.Int64
	EncodeNS atomic.Int64
	Solves   atomic.Int64 // fresh engine solves (latency denominators)
}

// NewMetrics returns a zeroed counter set.
func NewMetrics() *Metrics { return &Metrics{} }

// Snapshot returns the counters as a plain map, the payload of the
// /metrics endpoint. Reads are individually atomic (the set is not a
// consistent cut, which is fine for monitoring).
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"queue_depth":            m.QueueDepth.Load(),
		"in_flight":              m.InFlight.Load(),
		"admitted":               m.Admitted.Load(),
		"rejected":               m.Rejected.Load(),
		"cache_hits":             m.CacheHits.Load(),
		"cache_misses":           m.CacheMisses.Load(),
		"cache_evictions":        m.CacheEvictions.Load(),
		"coalesced":              m.Coalesced.Load(),
		"requests":               m.Requests.Load(),
		"bad_input":              m.BadInput.Load(),
		"canceled":               m.Canceled.Load(),
		"failed":                 m.Failed.Load(),
		"succeeded":              m.Succeeded.Load(),
		"sweep_requests":         m.SweepRequests.Load(),
		"sweep_points":           m.SweepPoints.Load(),
		"sweep_points_solved":    m.SweepPointsSolved.Load(),
		"sweep_points_cached":    m.SweepPointsCached.Load(),
		"sweep_points_coalesced": m.SweepPointsCoalesced.Load(),
		"sweep_points_replayed":  m.SweepPointsReplayed.Load(),
		"sweep_points_failed":    m.SweepPointsFailed.Load(),
		"sweep_completed":        m.SweepCompleted.Load(),
		"sweep_canceled":         m.SweepCanceled.Load(),
		"forward_attempts":       m.ForwardAttempts.Load(),
		"forward_ok":             m.ForwardOK.Load(),
		"forward_retries":        m.ForwardRetries.Load(),
		"forward_fallbacks":      m.ForwardFallbacks.Load(),
		"forwarded_in":           m.ForwardedIn.Load(),
		"forward_ns":             m.ForwardNS.Load(),
		"disk_hits":              m.DiskHits.Load(),
		"disk_puts":              m.DiskPuts.Load(),
		"disk_errors":            m.DiskErrors.Load(),
		"disk_dropped":           m.DiskDropped.Load(),
		"disk_records":           m.DiskRecords.Load(),
		"disk_bytes":             m.DiskBytes.Load(),
		"prewarm_solved":         m.PrewarmSolved.Load(),
		"prewarm_skipped":        m.PrewarmSkipped.Load(),
		"build_ns":               m.BuildNS.Load(),
		"ic_ns":                  m.ICNS.Load(),
		"solve_ns":               m.SolveNS.Load(),
		"encode_ns":              m.EncodeNS.Load(),
		"solves":                 m.Solves.Load(),
	}
}

// PublishExpvar exports this counter set under the expvar name
// "wampde_serve". expvar panics on duplicate names, so call this at most
// once per process (cmd/wampde-server guards it with sync.Once; tests use
// the per-server /metrics endpoint instead).
func (m *Metrics) PublishExpvar() {
	expvar.Publish("wampde_serve", expvar.Func(func() any { return m.Snapshot() }))
}
