package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/solverr"
)

// Named paper circuits a request may reference instead of embedding a
// netlist.
const (
	// CircuitPaperVCO is the §5 MEMS-varactor VCO, vacuum cavity
	// (Figures 7–9).
	CircuitPaperVCO = "paper-vco"
	// CircuitPaperVCOAir is the air-damped configuration (Figures 10–12).
	CircuitPaperVCOAir = "paper-vco-air"
	// CircuitRingVCO is the generated N-stage single-ended ring VCO; requests
	// spell it "ring-vco?stages=N" (N odd, netlist.RingStagesMin..Max).
	CircuitRingVCO = "ring-vco"
	// CircuitPseudoDiffVCO is the generated pseudodifferential ring,
	// "pseudodiff-vco?stages=N" (N even, netlist.PDStagesMin..Max).
	CircuitPseudoDiffVCO = "pseudodiff-vco"
	// CircuitBuckConverter is the generated PWM buck converter, spelled
	// "buck-converter?duty=D&fsw=F" (netlist.ConverterDutyMin..Max,
	// ConverterFswMin..Max). Converters run the forced analyses only:
	// transient, and the ripple envelope with ω pinned to fsw.
	CircuitBuckConverter = "buck-converter"
	// CircuitBoostConverter is the generated PWM boost converter,
	// "boost-converter?duty=D&fsw=F".
	CircuitBoostConverter = "boost-converter"
)

// Analysis kinds.
const (
	AnalysisEnvelope      = "envelope"
	AnalysisQuasiperiodic = "quasiperiodic"
	AnalysisTransient     = "transient"
	AnalysisShooting      = "shooting"
	AnalysisHB            = "hb"
)

// Admission caps: a request outside these bounds is rejected at decode
// time, before it can occupy a scheduler slot. They bound the work and the
// response size one job may cost, which is what lets the queue and the
// cache budget mean anything.
const (
	// MaxNetlistBytes bounds an embedded netlist source.
	MaxNetlistBytes = 64 << 10
	// MaxN1 bounds the warped-axis collocation grid.
	MaxN1 = 129
	// MaxN2 bounds the quasiperiodic slow-axis grid.
	MaxN2 = 128
	// MaxSteps bounds envelope t2 steps.
	MaxSteps = 20000
	// MaxTransientSteps bounds tstop/h for transient analyses.
	MaxTransientSteps = 5e6
	// MaxHarmonics bounds harmonic-balance samples per period.
	MaxHarmonics = 257
	// MaxVCtl bounds the named-VCO control-voltage override.
	MaxVCtl = 20.0
)

// RequestOptions are the per-analysis knobs of the wire request. Zero
// values mean "engine default"; Canonicalize spells the defaults out so
// differently-elided requests canonicalize identically.
type RequestOptions struct {
	N1     int     `json:"n1,omitempty"`     // warped-axis points (envelope/quasiperiodic)
	N2     int     `json:"n2,omitempty"`     // slow-axis points (quasiperiodic)
	Steps  int     `json:"steps,omitempty"`  // envelope t2 steps
	TStop  float64 `json:"tstop,omitempty"`  // end time (envelope/transient), seconds
	H      float64 `json:"h,omitempty"`      // transient step, seconds
	Period float64 `json:"period,omitempty"` // forcing period (shooting/hb, quasiperiodic slow period)
	F0     float64 `json:"f0,omitempty"`     // oscillation frequency guess, Hz
	NHarm  int     `json:"nharm,omitempty"`  // hb samples per period
}

// Request is the wire form of a simulation job: a circuit (named paper
// circuit or embedded netlist), an analysis kind and options. DeadlineMS is
// the per-job wall-clock budget; it deliberately does not participate in
// the canonical encoding — two requests for the same solve under different
// deadlines are the same solve.
type Request struct {
	Circuit  string         `json:"circuit,omitempty"` // named circuit; mutually exclusive with Netlist
	Netlist  string         `json:"netlist,omitempty"` // inline netlist source
	VCtlDC   float64        `json:"vctl_dc,omitempty"` // named-VCO DC control override (sweep knob), volts
	Analysis string         `json:"analysis"`
	Options  RequestOptions `json:"options"`
	// DeadlineMS, when positive, is this job's wall-clock budget in
	// milliseconds (queue wait + solve). Expiry cancels the solve through
	// the context path and returns the partial result with status 408.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// Canonical is the canonicalized request: validated, defaults applied,
// inapplicable fields zeroed. Its JSON encoding (fixed field order, Go's
// shortest-float number formatting) is the deterministic canonical byte
// string whose SHA-256 content-addresses the result cache.
type Canonical struct {
	Circuit  string  `json:"circuit,omitempty"`
	Netlist  string  `json:"netlist,omitempty"`
	VCtlDC   float64 `json:"vctl_dc,omitempty"`
	Analysis string  `json:"analysis"`
	N1       int     `json:"n1,omitempty"`
	N2       int     `json:"n2,omitempty"`
	Steps    int     `json:"steps,omitempty"`
	TStop    float64 `json:"tstop,omitempty"`
	H        float64 `json:"h,omitempty"`
	Period   float64 `json:"period,omitempty"`
	F0       float64 `json:"f0,omitempty"`
	NHarm    int     `json:"nharm,omitempty"`
}

// Encode returns the canonical byte encoding.
func (c *Canonical) Encode() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		// Canonical holds only strings, ints and validated finite floats;
		// Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: canonical encode: %v", err))
	}
	return b
}

// Hash returns the hex SHA-256 of the canonical encoding — the request's
// content address in the result cache and single-flight group.
func (c *Canonical) Hash() string {
	sum := sha256.Sum256(c.Encode())
	return hex.EncodeToString(sum[:])
}

// badInput builds the uniform decode/validation failure.
func badInput(format string, args ...any) error {
	return solverr.New(solverr.KindBadInput, "serve.request", format, args...)
}

// parseGeneratorCircuit recognizes the generated named circuits
// ("ring-vco?stages=N", "pseudodiff-vco?stages=N"). base is "" when s does
// not name a generator circuit at all; a recognized base with a malformed or
// missing stages parameter is an error. Stage-count bounds and parity are
// left to the generator itself.
func parseGeneratorCircuit(s string) (base string, stages int, err error) {
	for _, b := range []string{CircuitRingVCO, CircuitPseudoDiffVCO} {
		if s == b || strings.HasPrefix(s, b+"?") {
			base = b
			break
		}
	}
	if base == "" {
		return "", 0, nil
	}
	rest := strings.TrimPrefix(s, base)
	val, ok := strings.CutPrefix(rest, "?stages=")
	if !ok {
		return "", 0, badInput("circuit %s takes exactly one parameter: %s?stages=N", base, base)
	}
	stages, aerr := strconv.Atoi(val)
	if aerr != nil {
		return "", 0, badInput("circuit %s: stages %q is not an integer", base, val)
	}
	return base, stages, nil
}

// generatorFor maps a generator circuit base name to its netlist generator.
func generatorFor(base string) func(int, float64) (string, error) {
	if base == CircuitPseudoDiffVCO {
		return netlist.PseudoDiffVCO
	}
	return netlist.RingVCO
}

// parseConverterCircuit recognizes the generated converter circuits
// ("buck-converter?duty=D&fsw=F", "boost-converter?duty=D&fsw=F"). base is
// "" when s does not name a converter at all; a recognized base with
// malformed or missing parameters is an error. Parameter bounds are left to
// the generator itself.
func parseConverterCircuit(s string) (base string, duty, fsw float64, err error) {
	for _, b := range []string{CircuitBuckConverter, CircuitBoostConverter} {
		if s == b || strings.HasPrefix(s, b+"?") {
			base = b
			break
		}
	}
	if base == "" {
		return "", 0, 0, nil
	}
	shapeErr := func() error {
		return badInput("circuit %s takes exactly two parameters: %s?duty=D&fsw=F", base, base)
	}
	rest, ok := strings.CutPrefix(strings.TrimPrefix(s, base), "?duty=")
	if !ok {
		return "", 0, 0, shapeErr()
	}
	dstr, fstr, ok := strings.Cut(rest, "&fsw=")
	if !ok {
		return "", 0, 0, shapeErr()
	}
	if duty, err = strconv.ParseFloat(dstr, 64); err != nil {
		return "", 0, 0, badInput("circuit %s: duty %q is not a number", base, dstr)
	}
	if fsw, err = strconv.ParseFloat(fstr, 64); err != nil {
		return "", 0, 0, badInput("circuit %s: fsw %q is not a number", base, fstr)
	}
	return base, duty, fsw, nil
}

// parseConverterSweepBase recognizes a duty-sweep base circuit: a converter
// name carrying only the fsw parameter ("buck-converter?fsw=1e5"), the duty
// being supplied per sweep point.
func parseConverterSweepBase(s string) (base string, fsw float64, err error) {
	for _, b := range []string{CircuitBuckConverter, CircuitBoostConverter} {
		if s == b || strings.HasPrefix(s, b+"?") {
			base = b
			break
		}
	}
	if base == "" {
		return "", 0, badInput("duty sweep needs a converter base circuit, %s?fsw=F or %s?fsw=F",
			CircuitBuckConverter, CircuitBoostConverter)
	}
	val, ok := strings.CutPrefix(strings.TrimPrefix(s, base), "?fsw=")
	if !ok {
		return "", 0, badInput("duty sweep base circuit takes exactly one parameter, %s?fsw=F (the duty comes from the sweep)", base)
	}
	fsw, aerr := strconv.ParseFloat(val, 64)
	if aerr != nil {
		return "", 0, badInput("circuit %s: fsw %q is not a number", base, val)
	}
	return base, fsw, nil
}

// converterGeneratorFor maps a converter base name to its netlist generator.
func converterGeneratorFor(base string) func(duty, fsw float64) (string, error) {
	if base == CircuitBoostConverter {
		return netlist.BoostConverter
	}
	return netlist.BuckConverter
}

// converterN1 is the catalog t1 resolution for a converter's ripple
// envelope — per-circuit, set by measurement against brute-force transients
// (see netlist.BuckN1/BoostN1 for the record).
func converterN1(base string) int {
	if base == CircuitBoostConverter {
		return netlist.BoostN1
	}
	return netlist.BuckN1
}

// defaultConverterSteps is the converter envelope's default t2 step count:
// one step per switching period (the mpde.RippleOptions preset), clamped
// into the admission bounds.
func defaultConverterSteps(tstop, fsw float64) int {
	p := tstop * fsw
	if p >= MaxSteps {
		return MaxSteps
	}
	if p < 1 {
		return 1
	}
	return int(math.Round(p))
}

// DecodeRequest parses one JSON request from r. It is strict — unknown
// fields and trailing garbage are rejected — so a typoed option name
// cannot silently canonicalize to a different solve than the caller meant.
func DecodeRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, badInput("invalid request JSON: %v", err)
	}
	// Reject trailing non-whitespace so "{}garbage" is not accepted.
	if dec.More() {
		return nil, badInput("trailing data after request JSON")
	}
	return &req, nil
}

// finitePos reports v > 0 and finite.
func finitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// Canonicalize validates the request and returns its canonical form. All
// validation happens here, before the request can touch the scheduler: a
// request that canonicalizes will build and run (netlist sources are parsed
// now), and one that will not is rejected as bad input.
func (r *Request) Canonicalize() (*Canonical, error) {
	c := &Canonical{Analysis: r.Analysis}

	// Circuit source.
	hasNamed := r.Circuit != ""
	hasNetlist := r.Netlist != ""
	switch {
	case hasNamed == hasNetlist:
		return nil, badInput("exactly one of circuit and netlist is required")
	case hasNamed:
		base, stages, err := parseGeneratorCircuit(r.Circuit)
		if err != nil {
			return nil, err
		}
		cbase, duty, fsw, cerr := parseConverterCircuit(r.Circuit)
		if cerr != nil {
			return nil, cerr
		}
		switch {
		case base != "":
			// Validate stages by generating (the generator owns the bounds
			// and parity rules), and normalize the spelling so e.g.
			// "stages=015" canonicalizes identically to "stages=15".
			if _, gerr := generatorFor(base)(stages, 0); gerr != nil {
				return nil, badInput("%v", gerr)
			}
			c.Circuit = fmt.Sprintf("%s?stages=%d", base, stages)
		case cbase != "":
			// Validate duty/fsw by generating (the generator owns the bounds)
			// and normalize the spelling so "duty=0.50&fsw=100e3"
			// canonicalizes identically to "duty=0.5&fsw=100000".
			if _, gerr := converterGeneratorFor(cbase)(duty, fsw); gerr != nil {
				return nil, badInput("%v", gerr)
			}
			c.Circuit = fmt.Sprintf("%s?duty=%g&fsw=%g", cbase, duty, fsw)
		case r.Circuit == CircuitPaperVCO || r.Circuit == CircuitPaperVCOAir:
			c.Circuit = r.Circuit
		default:
			return nil, badInput("unknown circuit %q (want %s, %s, %s?stages=N, %s?stages=N, %s?duty=D&fsw=F or %s?duty=D&fsw=F)",
				r.Circuit, CircuitPaperVCO, CircuitPaperVCOAir, CircuitRingVCO, CircuitPseudoDiffVCO,
				CircuitBuckConverter, CircuitBoostConverter)
		}
		if r.VCtlDC != 0 {
			if cbase != "" {
				return nil, badInput("vctl_dc does not apply to converter circuits (the duty ratio is the sweep knob)")
			}
			if !finitePos(r.VCtlDC) || r.VCtlDC > MaxVCtl {
				return nil, badInput("vctl_dc must be in (0, %g], got %v", MaxVCtl, r.VCtlDC)
			}
			c.VCtlDC = r.VCtlDC
		}
	default:
		if len(r.Netlist) > MaxNetlistBytes {
			return nil, badInput("netlist too large: %d bytes (cap %d)", len(r.Netlist), MaxNetlistBytes)
		}
		if r.VCtlDC != 0 {
			return nil, badInput("vctl_dc applies only to named circuits")
		}
		ckt, err := netlist.Parse(r.Netlist)
		if err != nil {
			return nil, badInput("netlist: %v", err)
		}
		if _, err := ckt.Build(); err != nil {
			return nil, badInput("netlist build: %v", err)
		}
		// Canonicalize line endings and trailing whitespace only; the source
		// text itself is the canonical circuit identity (two syntactically
		// different netlists of the same circuit are distinct solves, which
		// is the conservative direction for a result cache).
		c.Netlist = strings.ReplaceAll(r.Netlist, "\r\n", "\n")
	}

	// Frequency-guess default: the paper VCO's nominal, or — for generator
	// circuits — the ring's designed oscillation frequency at the effective
	// control bias.
	f0def := circuit.VCONominalFreq
	if base, stages, _ := parseGeneratorCircuit(c.Circuit); base != "" {
		vc := c.VCtlDC
		if vc == 0 {
			vc = netlist.VctlDefault
		}
		f0def = netlist.RingVCONominalFreq(stages, vc)
	}

	// Converter circuits run the forced analyses only: the ripple envelope
	// (ω pinned to the PWM frequency from the circuit name — no phase
	// condition, no frequency unknown) and the brute-force transient. The
	// autonomous analyses need an oscillation variable and a free frequency,
	// which a driven converter does not have.
	convBase, _, convFsw, _ := parseConverterCircuit(c.Circuit)
	if convBase != "" && r.Analysis != AnalysisEnvelope && r.Analysis != AnalysisTransient {
		return nil, badInput("analysis %q does not apply to converter circuits (want %s or %s)",
			r.Analysis, AnalysisEnvelope, AnalysisTransient)
	}

	o := r.Options
	switch r.Analysis {
	case AnalysisEnvelope:
		if !finitePos(o.TStop) {
			return nil, badInput("envelope needs options.tstop > 0")
		}
		c.TStop = o.TStop
		if convBase != "" {
			// Converter ripple envelope: the catalog per-circuit t1
			// resolution and one t2 step per switching period by default,
			// and no frequency guess — the fast scale is pinned to fsw.
			c.N1 = defaultInt(o.N1, converterN1(convBase))
			c.Steps = defaultInt(o.Steps, defaultConverterSteps(c.TStop, convFsw))
			if o.F0 != 0 {
				return nil, badInput("options.f0 does not apply to converter circuits (the ripple envelope is pinned to fsw)")
			}
		} else {
			c.N1 = defaultInt(o.N1, 25)
			c.Steps = defaultInt(o.Steps, 400)
			c.F0 = defaultFloat(o.F0, f0def)
			if !finitePos(c.F0) {
				return nil, badInput("options.f0 must be positive and finite")
			}
		}
		if c.N1 > MaxN1 || c.N1 < 5 {
			return nil, badInput("options.n1 must be in [5, %d], got %d", MaxN1, c.N1)
		}
		if c.Steps > MaxSteps || c.Steps < 1 {
			return nil, badInput("options.steps must be in [1, %d], got %d", MaxSteps, c.Steps)
		}
	case AnalysisQuasiperiodic:
		if !finitePos(o.Period) {
			return nil, badInput("quasiperiodic needs options.period > 0 (the slow-time period)")
		}
		c.Period = o.Period
		c.N1 = defaultInt(o.N1, 17)
		c.N2 = defaultInt(o.N2, 15)
		c.F0 = defaultFloat(o.F0, f0def)
		if c.N1 > MaxN1 || c.N1 < 5 {
			return nil, badInput("options.n1 must be in [5, %d], got %d", MaxN1, c.N1)
		}
		if c.N2 > MaxN2 || c.N2 < 3 {
			return nil, badInput("options.n2 must be in [3, %d], got %d", MaxN2, c.N2)
		}
		if !finitePos(c.F0) {
			return nil, badInput("options.f0 must be positive and finite")
		}
	case AnalysisTransient:
		if !finitePos(o.TStop) || !finitePos(o.H) {
			return nil, badInput("transient needs options.tstop > 0 and options.h > 0")
		}
		if o.TStop/o.H > MaxTransientSteps {
			return nil, badInput("transient span tstop/h = %.3g exceeds the %g-step cap", o.TStop/o.H, float64(MaxTransientSteps))
		}
		c.TStop = o.TStop
		c.H = o.H
	case AnalysisShooting:
		if o.Period != 0 && !finitePos(o.Period) {
			return nil, badInput("options.period must be positive and finite")
		}
		if o.Period == 0 {
			// Autonomous shooting: needs a frequency guess and an
			// oscillation variable (checked at build time for netlists,
			// always present on the named VCOs).
			c.F0 = defaultFloat(o.F0, f0def)
			if !finitePos(c.F0) {
				return nil, badInput("options.f0 must be positive and finite")
			}
		} else {
			c.Period = o.Period
		}
	case AnalysisHB:
		c.NHarm = defaultInt(o.NHarm, 33)
		if c.NHarm > MaxHarmonics || c.NHarm < 3 {
			return nil, badInput("options.nharm must be in [3, %d], got %d", MaxHarmonics, c.NHarm)
		}
		if o.Period != 0 && !finitePos(o.Period) {
			return nil, badInput("options.period must be positive and finite")
		}
		if o.Period == 0 {
			c.F0 = defaultFloat(o.F0, f0def)
			if !finitePos(c.F0) {
				return nil, badInput("options.f0 must be positive and finite")
			}
		} else {
			c.Period = o.Period
		}
	case "":
		return nil, badInput("analysis is required")
	default:
		return nil, badInput("unknown analysis %q", r.Analysis)
	}

	// Cross-check: unused options must be zero, so a request cannot carry
	// stray knobs that silently don't apply (and would fracture the cache
	// into spuriously distinct keys if they were encoded).
	if err := rejectStrayOptions(r.Analysis, o); err != nil {
		return nil, err
	}
	return c, nil
}

// rejectStrayOptions fails when an option that does not apply to the
// analysis is set.
func rejectStrayOptions(analysis string, o RequestOptions) error {
	type knob struct {
		name string
		set  bool
	}
	knobs := []knob{
		{"n1", o.N1 != 0}, {"n2", o.N2 != 0}, {"steps", o.Steps != 0},
		{"tstop", o.TStop != 0}, {"h", o.H != 0}, {"period", o.Period != 0},
		{"f0", o.F0 != 0}, {"nharm", o.NHarm != 0},
	}
	allowed := map[string]map[string]bool{
		AnalysisEnvelope:      {"n1": true, "steps": true, "tstop": true, "f0": true},
		AnalysisQuasiperiodic: {"n1": true, "n2": true, "period": true, "f0": true},
		AnalysisTransient:     {"tstop": true, "h": true},
		AnalysisShooting:      {"period": true, "f0": true},
		AnalysisHB:            {"period": true, "f0": true, "nharm": true},
	}[analysis]
	for _, k := range knobs {
		if k.set && !allowed[k.name] {
			return badInput("options.%s does not apply to analysis %q", k.name, analysis)
		}
	}
	return nil
}

func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func defaultFloat(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// ErrTooLarge is reported when the request body exceeds the server's size
// cap (http.MaxBytesReader).
var ErrTooLarge = errors.New("serve: request body too large")
