package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Handoff: when a node joins, it must receive exactly the keys it now
// owns — no more (joining must not copy whole stores around) and no less
// (its share must serve without recomputing). Each existing member exposes
// GET /v1/cluster/handoff?node=ADDR, which iterates its segment-store
// index and streams precisely the records whose key would list ADDR among
// its R owners once ADDR is in the ring. The stream reuses the segment
// store's own record framing (length-prefixed, CRC32-C-trailed), so every
// record is verified twice: read-time by the sender's store, and again by
// the receiver before it persists — a corrupt record aborts the pull
// rather than entering the store.
//
// The sender computes ownership against its current membership with ADDR
// unioned in, a pure computation with no side effects — so a pull is
// correct even before the join has propagated to that sender, and the
// moved set is exactly the joiner's consistent-hash share (the rebalance
// bound pinned in shard_test.go).

// handoffCountHeader carries the number of records the sender will stream.
const handoffCountHeader = "X-Wampde-Handoff-Count"

// handleHandoff streams the records owed to the node named in the query.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	if err := validateNodeAddr(node); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.m.HandoffPulls.Add(1)
	var keys []string
	if s.store != nil {
		view := s.member.view()
		ring := NewRing(append(view.Nodes, node), s.cfg.Cluster.Replicas)
		for _, key := range s.store.Keys() {
			for _, owner := range ring.Owners(key, s.replication) {
				if owner == node {
					keys = append(keys, key)
					break
				}
			}
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(handoffCountHeader, strconv.Itoa(len(keys)))
	for _, key := range keys {
		body := s.store.Get(key) // CRC re-verified by the store
		if body == nil {
			continue
		}
		if _, err := w.Write(encodeRecord(key, body)); err != nil {
			return // receiver hung up; it will retry or re-pull
		}
		s.m.HandoffKeysSent.Add(1)
		s.m.HandoffBytes.Add(int64(len(body)))
	}
}

// decodeHandoffRecord reads one record from a handoff stream. Returns
// io.EOF exactly at a clean record boundary; any truncated or
// bounds-violating or checksum-failing record is an error. Never panics on
// arbitrary input (the fuzz target's contract).
func decodeHandoffRecord(br *bufio.Reader) (key string, body []byte, err error) {
	var hdr [storeHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("serve: handoff record header: %w", err)
	}
	keyLen := int64(binary.BigEndian.Uint32(hdr[0:4]))
	bodyLen := int64(binary.BigEndian.Uint32(hdr[4:8]))
	if keyLen < 1 || keyLen > storeMaxKeyLen || bodyLen < 1 || bodyLen > storeMaxBodyLen {
		return "", nil, fmt.Errorf("serve: handoff record out of bounds (key %d, body %d)", keyLen, bodyLen)
	}
	rec := make([]byte, storeHeaderLen+keyLen+bodyLen+storeTrailerLen)
	copy(rec, hdr[:])
	if _, err := io.ReadFull(br, rec[storeHeaderLen:]); err != nil {
		return "", nil, fmt.Errorf("serve: handoff record truncated: %w", err)
	}
	n := int64(len(rec))
	want := binary.BigEndian.Uint32(rec[n-storeTrailerLen:])
	if crc32.Checksum(rec[:n-storeTrailerLen], storeCRC) != want {
		return "", nil, fmt.Errorf("serve: handoff record checksum mismatch")
	}
	return string(rec[storeHeaderLen : storeHeaderLen+keyLen]),
		rec[storeHeaderLen+keyLen : n-storeTrailerLen], nil
}

// pullHandoff fetches this node's share from every current member. Records
// already present (a key replicated on two senders streams twice) are
// skipped, so handoff_keys_received counts exactly the distinct keys that
// moved — the number the CI join gate compares against the computed share.
func (s *Server) pullHandoff(ctx context.Context) {
	for _, peer := range s.member.peers() {
		if err := s.pullHandoffFrom(ctx, peer); err != nil {
			s.m.MemberHeartbeatMisses.Add(1)
			s.breakers.failure(peer)
			continue
		}
		s.breakers.success(peer)
	}
}

func (s *Server) pullHandoffFrom(ctx context.Context, peer string) error {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+peer+"/v1/cluster/handoff?node="+s.self, nil)
	if err != nil {
		return err
	}
	resp, err := s.fwd.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: handoff from %s: status %d", peer, resp.StatusCode)
	}
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		key, body, err := decodeHandoffRecord(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			s.m.HandoffRejected.Add(1)
			return err
		}
		if cached, _ := s.lookup(key); cached != nil {
			continue // replicated copy already streamed by another sender
		}
		s.persist(key, body)
		s.m.HandoffKeysReceived.Add(1)
	}
}
