package serve

import (
	"testing"
	"time"
)

// TestBreakerLifecycle drives one peer through the full state machine with
// a fake clock and pins every counter transition: closed → open on the K-th
// consecutive failure, short-circuit while open, half-open probe after the
// cooldown, re-open on a failed probe, close on a successful one.
func TestBreakerLifecycle(t *testing.T) {
	m := NewMetrics()
	b := newBreakerSet(3, time.Second, m)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	const peer = "p:1"

	// Closed: failures below the threshold never block.
	for i := 0; i < 2; i++ {
		if !b.allow(peer) {
			t.Fatalf("closed breaker blocked request %d", i)
		}
		b.failure(peer)
	}
	if got := m.BreakerOpens.Load(); got != 0 {
		t.Fatalf("opened after %d failures (threshold 3): opens=%d", 2, got)
	}
	// Third consecutive failure opens.
	b.allow(peer)
	b.failure(peer)
	if got := m.BreakerOpens.Load(); got != 1 {
		t.Fatalf("BreakerOpens = %d after the threshold failure, want 1", got)
	}
	// Open: short-circuits until the cooldown elapses.
	for i := 0; i < 2; i++ {
		if b.allow(peer) {
			t.Fatal("open breaker allowed a request inside the cooldown")
		}
	}
	if got := m.BreakerShortCircuits.Load(); got != 2 {
		t.Fatalf("BreakerShortCircuits = %d, want 2", got)
	}

	// Cooldown elapsed: exactly one probe goes through; a second concurrent
	// request short-circuits while the probe is out.
	now = now.Add(time.Second)
	if !b.allow(peer) {
		t.Fatal("cooldown elapsed but no probe allowed")
	}
	if got := m.BreakerProbes.Load(); got != 1 {
		t.Fatalf("BreakerProbes = %d, want 1", got)
	}
	if b.allow(peer) {
		t.Fatal("second request allowed while the probe is in flight")
	}
	// The probe fails: re-open for another full cooldown.
	b.failure(peer)
	if got := m.BreakerOpens.Load(); got != 2 {
		t.Fatalf("BreakerOpens = %d after the failed probe, want 2", got)
	}
	if b.allow(peer) {
		t.Fatal("re-opened breaker allowed a request immediately")
	}

	// Second probe succeeds: the breaker closes and traffic flows.
	now = now.Add(time.Second)
	if !b.allow(peer) {
		t.Fatal("second probe not allowed")
	}
	b.success(peer)
	if got := m.BreakerCloses.Load(); got != 1 {
		t.Fatalf("BreakerCloses = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		if !b.allow(peer) {
			t.Fatal("closed breaker blocked traffic after recovery")
		}
	}
	// Final tallies: the exact deterministic counter set.
	if opens, sc, probes, closes := m.BreakerOpens.Load(), m.BreakerShortCircuits.Load(),
		m.BreakerProbes.Load(), m.BreakerCloses.Load(); opens != 2 || sc != 4 || probes != 2 || closes != 1 {
		t.Fatalf("counters opens=%d shortCircuits=%d probes=%d closes=%d, want 2/4/2/1", opens, sc, probes, closes)
	}
}

// TestBreakerSuccessResetsStreak: non-consecutive failures never open — a
// success in between resets the count.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	m := NewMetrics()
	b := newBreakerSet(3, time.Second, m)
	const peer = "p:1"
	for round := 0; round < 4; round++ {
		b.failure(peer)
		b.failure(peer)
		b.success(peer)
	}
	if got := m.BreakerOpens.Load(); got != 0 {
		t.Fatalf("interleaved failures opened the breaker: opens=%d", got)
	}
	b.failure(peer)
	b.failure(peer)
	b.failure(peer)
	if got := m.BreakerOpens.Load(); got != 1 {
		t.Fatalf("three consecutive failures did not open: opens=%d", got)
	}
}

// TestBreakerPerPeerIsolation: one peer's death must not affect another's
// breaker.
func TestBreakerPerPeerIsolation(t *testing.T) {
	m := NewMetrics()
	b := newBreakerSet(2, time.Hour, m)
	b.failure("dead:1")
	b.failure("dead:1")
	if b.allow("dead:1") {
		t.Fatal("dead peer's breaker still closed")
	}
	if !b.allow("alive:1") {
		t.Fatal("healthy peer's breaker tripped by another peer's failures")
	}
}

// TestBackoffDeterminism: the jittered schedule is a pure function of the
// seed — same seed, same delays — and every delay respects the
// min(base·2^n, max) envelope with the [0.5, 1) jitter factor.
func TestBackoffDeterminism(t *testing.T) {
	base, max := 25*time.Millisecond, 500*time.Millisecond
	a := newBackoff(base, max, 42)
	b := newBackoff(base, max, 42)
	c := newBackoff(base, max, 7)
	differs := false
	for attempt := 0; attempt < 12; attempt++ {
		da, db, dc := a.delay(attempt), b.delay(attempt), c.delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v vs %v", attempt, da, db)
		}
		if da != dc {
			differs = true
		}
		envelope := base << uint(attempt)
		if envelope > max || envelope <= 0 {
			envelope = max
		}
		if da < envelope/2 || da >= envelope {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, da, envelope/2, envelope)
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestBackoffDefaults: zero and inverted configuration fall back to sane
// bounds rather than zero sleeps or unbounded growth.
func TestBackoffDefaults(t *testing.T) {
	b := newBackoff(0, 0, 1)
	if d := b.delay(0); d < 12*time.Millisecond || d >= 25*time.Millisecond {
		t.Fatalf("default base delay %v outside [12.5ms, 25ms)", d)
	}
	if d := b.delay(20); d >= 500*time.Millisecond {
		t.Fatalf("delay %v exceeds the default cap", d)
	}
	inv := newBackoff(time.Second, time.Millisecond, 1)
	if d := inv.delay(5); d >= time.Second {
		t.Fatalf("inverted max not clamped to base: %v", d)
	}
}
