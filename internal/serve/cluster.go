package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/faultinject"
)

// Cluster mode: consistent-hash ownership of content hashes over a
// dynamic, epoch-versioned membership (membership.go). Each hash has R
// owners (Owners, successor-distinct): the primary dedups the solve
// cluster-wide through its single-flight group, and every fresh solve is
// written through to the remaining owners (replicate.go), so any single
// node death loses neither availability nor cached bytes. A node
// receiving a request it is not primary for forwards it to the owners in
// ring order, skipping peers whose circuit breaker is open (breaker.go)
// and retrying transport failures with capped jittered exponential
// backoff; only when every owner is unreachable does it degrade to a
// local solve (trading global dedup for availability). A forwarded
// request is never re-forwarded, so inconsistent membership views cannot
// produce routing loops.

// forwardHeader marks a forwarded request. The owner solves it locally
// unconditionally; a node never re-forwards, so inconsistent peer lists
// cannot produce forwarding loops.
const forwardHeader = "X-Wampde-Forward"

// originHeader names the node that actually served a proxied response.
const originHeader = "X-Wampde-Origin"

// ClusterConfig wires one node into a cluster.
type ClusterConfig struct {
	// Self is this node's advertised address (host:port), as it appears in
	// the peer lists of the other nodes.
	Self string
	// Peers seeds the membership: other nodes' advertised addresses, in
	// any order, with or without Self included. With Join unset this is
	// the boot membership (epoch 1); with Join set these are the seed
	// nodes asked to admit this node.
	Peers []string
	// Join, when set, boots this node into an existing cluster: it asks
	// the Peers (seed nodes) to admit it, adopts the answered membership
	// view, and pulls its consistent-hash share from the other members
	// via segment-streamed handoff before reporting ready.
	Join bool
	// Replicas is the virtual-node count per peer on the hash ring
	// (default 64).
	Replicas int
	// Replication is R, the number of owners per content hash (default 2;
	// 1 disables replication and restores single-owner PR-8 semantics).
	Replication int
	// ForwardTimeout bounds one forwarding attempt end to end (default:
	// the server's DefaultDeadline plus 15 seconds of proxy slack, so a
	// forwarded solve can use its whole budget before the proxy gives up).
	ForwardTimeout time.Duration
	// ForwardAttempts is the per-owner transport-retry budget of one
	// forwarded request (default 2: the original try plus one retry).
	ForwardAttempts int
	// HeartbeatInterval paces the membership/health heartbeat loop
	// (default 0 = disabled; cmd/wampde-server defaults it to 1s).
	HeartbeatInterval time.Duration
	// BreakerThreshold is K, the consecutive transport failures that open
	// a peer's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker short-circuits before
	// allowing a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// BackoffBase and BackoffMax shape the capped jittered exponential
	// retry backoff (defaults 25ms and 500ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffSeed seeds the jitter PRNG; any fixed seed makes the retry
	// schedule exactly reproducible (default 1).
	BackoffSeed int64
	// ReplQueueCap bounds the async replication queue (default 256).
	ReplQueueCap int
}

// forwarder is the bounded HTTP client a node uses to reach hash owners.
type forwarder struct {
	client   *http.Client
	timeout  time.Duration
	attempts int
	bo       *backoff
	breakers *breakerSet
	m        *Metrics
}

func newForwarder(timeout time.Duration, attempts int, bo *backoff, breakers *breakerSet, m *Metrics) *forwarder {
	if attempts <= 0 {
		attempts = 2
	}
	return &forwarder{
		client: &http.Client{
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     60 * time.Second,
			},
		},
		timeout:  timeout,
		attempts: attempts,
		bo:       bo,
		breakers: breakers,
		m:        m,
	}
}

// simulate forwards a raw /v1/simulate body to the hash's owners, in ring
// order, and returns the first verbatim response along with the owner that
// answered. Per owner: an open circuit breaker skips it outright; a
// transport-level failure (connection refused, reset, stale pooled
// connection, injected fault) is retried up to the attempt budget with
// capped jittered backoff, feeding the breaker each time. An HTTP response
// of any status ends the search — the owner answered, and its answer
// (including its error mapping) is authoritative. Only when every owner is
// exhausted does simulate return an error (the caller's local-solve
// fallback).
func (f *forwarder) simulate(ctx context.Context, owners []string, raw []byte) (status int, xcache string, body []byte, origin string, err error) {
	f.m.ForwardAttempts.Add(1)
	t0 := time.Now()
	defer func() { f.m.ForwardNS.Add(time.Since(t0).Nanoseconds()) }()
	err = fmt.Errorf("serve: no reachable owner")
	for _, owner := range owners {
		for attempt := 0; attempt < f.attempts; attempt++ {
			if !f.breakers.allow(owner) {
				break // open breaker: skip this owner entirely
			}
			if attempt > 0 {
				f.m.ForwardRetries.Add(1)
				select {
				case <-time.After(f.bo.delay(attempt - 1)):
				case <-ctx.Done():
					return 0, "", nil, "", ctx.Err()
				}
			}
			status, xcache, body, err = f.post(ctx, owner, raw)
			if err == nil {
				f.breakers.success(owner)
				f.m.ForwardOK.Add(1)
				return status, xcache, body, owner, nil
			}
			f.breakers.failure(owner)
			if ctx.Err() != nil {
				return 0, "", nil, "", err
			}
		}
	}
	return 0, "", nil, "", err
}

func (f *forwarder) post(ctx context.Context, owner string, raw []byte) (int, string, []byte, error) {
	if faultinject.Fire(faultinject.SiteForwardTransport) {
		return 0, "", nil, fmt.Errorf("serve: injected forward transport failure to %s", owner)
	}
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/v1/simulate", strings.NewReader(string(raw)))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "1")
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), body, nil
}

// prewarmSet is the boot-time cache warming list: the named paper circuits
// (vacuum and air MEMS VCOs) plus small ring-VCO stage counts, each as a
// short fixed-step transient — cheap, deterministic solves whose hashes are
// stable across every node and every boot. Prewarm solves any entry absent
// from the cache tiers and persists it, so a node restarted onto its disk
// store skips all of them (the skip is itself the disk tier's boot
// self-check). The set is a pure function of nothing: all nodes agree on it.
func prewarmSet() []*Canonical {
	reqs := []Request{
		{Circuit: CircuitPaperVCO, Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-6, H: 1e-8}},
		{Circuit: CircuitPaperVCOAir, Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-6, H: 1e-8}},
		{Circuit: CircuitRingVCO + "?stages=3", Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-6, H: 1e-8}},
		{Circuit: CircuitRingVCO + "?stages=5", Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-6, H: 1e-8}},
		// One converter start-up slice keeps the switched-circuit solve path
		// (BDF2 + relaxed Newton, zero-state start) exercised by every boot
		// and its bytes flowing through replication and handoff.
		{Circuit: CircuitBuckConverter + "?duty=0.5&fsw=1e5", Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-4, H: 5e-8}},
	}
	out := make([]*Canonical, 0, len(reqs))
	for i := range reqs {
		c, err := reqs[i].Canonicalize()
		if err != nil {
			// The set is static and covered by tests; a failure here is a
			// programming error, not an input error.
			panic("serve: prewarm set: " + err.Error())
		}
		out = append(out, c)
	}
	return out
}

// PrewarmHashes returns the content hashes of the prewarm set, in order.
// Harnesses (cmd/wampde-load) use it to compute which keys a joining node
// is owed without re-deriving the canonical encoding.
func PrewarmHashes() []string {
	set := prewarmSet()
	out := make([]string, len(set))
	for i, c := range set {
		out[i] = c.Hash()
	}
	return out
}

// prewarm solves every absent prewarm entry sequentially, bypassing the
// admission queue (boot work must not occupy client slots) but joining the
// single-flight group so a concurrent client request for the same hash
// still coalesces. Every node prewarms the full set locally — the set is
// small and global, and a warm local copy on every node is the point.
func (s *Server) prewarm(ctx context.Context) {
	defer s.prewarmWG.Done()
	defer s.prewarmDone.Store(true)
	for _, c := range prewarmSet() {
		if ctx.Err() != nil {
			return
		}
		hash := c.Hash()
		if body, _ := s.lookup(hash); body != nil {
			s.m.PrewarmSkipped.Add(1)
			continue
		}
		f, leader := s.flights.join(hash)
		if !leader {
			<-f.done
			continue
		}
		jctx, cancel := context.WithTimeout(ctx, s.cfg.DefaultDeadline)
		status, body := s.runJob(jctx, hash, c)
		cancel()
		if status == http.StatusOK {
			s.persist(hash, body)
			s.m.PrewarmSolved.Add(1)
		}
		s.flights.complete(hash, f, flightResult{status: status, body: body})
	}
}
