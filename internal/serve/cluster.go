package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Cluster mode: a static peer list with consistent-hash ownership of
// content hashes. Any node accepts any request; a request whose hash it
// does not own is forwarded to the owner over HTTP, so the owner's
// single-flight group dedups the solve cluster-wide (exactly one engine
// solve per distinct hash, no matter which nodes the requests land on).
// Forwarding is bounded — per-attempt timeout, one retry on connection
// failure (which also absorbs stale keep-alive connections to a restarted
// peer) — and degrades gracefully: when the owner is unreachable the
// receiving node solves locally instead of erroring, trading global dedup
// for availability until the owner returns.

// forwardHeader marks a forwarded request. The owner solves it locally
// unconditionally; a node never re-forwards, so inconsistent peer lists
// cannot produce forwarding loops.
const forwardHeader = "X-Wampde-Forward"

// originHeader names the node that actually served a proxied response.
const originHeader = "X-Wampde-Origin"

// ClusterConfig wires one node into a cluster.
type ClusterConfig struct {
	// Self is this node's advertised address (host:port), as it appears in
	// the peer lists of the other nodes.
	Self string
	// Peers is the static membership: every cluster node's advertised
	// address, in any order, with or without Self included.
	Peers []string
	// Replicas is the virtual-node count per peer on the hash ring
	// (default 64).
	Replicas int
	// ForwardTimeout bounds one forwarding attempt end to end (default:
	// the server's DefaultDeadline plus 15 seconds of proxy slack, so a
	// forwarded solve can use its whole budget before the proxy gives up).
	ForwardTimeout time.Duration
}

// forwarder is the bounded HTTP client a node uses to reach hash owners.
type forwarder struct {
	client  *http.Client
	timeout time.Duration
	m       *Metrics
}

func newForwarder(timeout time.Duration, m *Metrics) *forwarder {
	return &forwarder{
		client: &http.Client{
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     60 * time.Second,
			},
		},
		timeout: timeout,
		m:       m,
	}
}

// simulate forwards a raw /v1/simulate body to owner and returns the
// owner's verbatim response. A transport-level failure (connection refused,
// reset, stale pooled connection) is retried exactly once against a fresh
// connection; an HTTP response of any status is returned as-is — the owner
// answered, and its answer (including its error mapping) is authoritative.
func (f *forwarder) simulate(ctx context.Context, owner string, raw []byte) (status int, xcache string, body []byte, err error) {
	f.m.ForwardAttempts.Add(1)
	t0 := time.Now()
	defer func() { f.m.ForwardNS.Add(time.Since(t0).Nanoseconds()) }()
	for attempt := 0; ; attempt++ {
		status, xcache, body, err = f.post(ctx, owner, raw)
		if err == nil {
			f.m.ForwardOK.Add(1)
			return status, xcache, body, nil
		}
		if attempt > 0 || ctx.Err() != nil {
			return 0, "", nil, err
		}
		f.m.ForwardRetries.Add(1)
	}
}

func (f *forwarder) post(ctx context.Context, owner string, raw []byte) (int, string, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/v1/simulate", strings.NewReader(string(raw)))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "1")
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), body, nil
}

// prewarmSet is the boot-time cache warming list: the named paper circuits
// (vacuum and air MEMS VCOs) plus small ring-VCO stage counts, each as a
// short fixed-step transient — cheap, deterministic solves whose hashes are
// stable across every node and every boot. Prewarm solves any entry absent
// from the cache tiers and persists it, so a node restarted onto its disk
// store skips all of them (the skip is itself the disk tier's boot
// self-check). The set is a pure function of nothing: all nodes agree on it.
func prewarmSet() []*Canonical {
	reqs := []Request{
		{Circuit: CircuitPaperVCO, Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-6, H: 1e-8}},
		{Circuit: CircuitPaperVCOAir, Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-6, H: 1e-8}},
		{Circuit: CircuitRingVCO + "?stages=3", Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-6, H: 1e-8}},
		{Circuit: CircuitRingVCO + "?stages=5", Analysis: AnalysisTransient, Options: RequestOptions{TStop: 2e-6, H: 1e-8}},
	}
	out := make([]*Canonical, 0, len(reqs))
	for i := range reqs {
		c, err := reqs[i].Canonicalize()
		if err != nil {
			// The set is static and covered by tests; a failure here is a
			// programming error, not an input error.
			panic("serve: prewarm set: " + err.Error())
		}
		out = append(out, c)
	}
	return out
}

// prewarm solves every absent prewarm entry sequentially, bypassing the
// admission queue (boot work must not occupy client slots) but joining the
// single-flight group so a concurrent client request for the same hash
// still coalesces. Every node prewarms the full set locally — the set is
// small and global, and a warm local copy on every node is the point.
func (s *Server) prewarm(ctx context.Context) {
	defer s.prewarmWG.Done()
	defer s.prewarmDone.Store(true)
	for _, c := range prewarmSet() {
		if ctx.Err() != nil {
			return
		}
		hash := c.Hash()
		if body, _ := s.lookup(hash); body != nil {
			s.m.PrewarmSkipped.Add(1)
			continue
		}
		f, leader := s.flights.join(hash)
		if !leader {
			<-f.done
			continue
		}
		jctx, cancel := context.WithTimeout(ctx, s.cfg.DefaultDeadline)
		status, body := s.runJob(jctx, hash, c)
		cancel()
		if status == http.StatusOK {
			s.persist(hash, body)
			s.m.PrewarmSolved.Add(1)
		}
		s.flights.complete(hash, f, flightResult{status: status, body: body})
	}
}
