package serve

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testCluster is an in-process N-node cluster: real TCP listeners (so
// forwarding exercises the actual HTTP client) with per-node fake engines.
type testCluster struct {
	addrs   []string
	servers []*Server
	engines []*fakeEngine
	https   []*http.Server
}

func newTestCluster(t *testing.T, n int, cfg func(i int) Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		tc.addrs = append(tc.addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		c := cfg(i)
		eng, _ := c.Engine.(*fakeEngine)
		tc.engines = append(tc.engines, eng)
		// Preserve a caller-provided cluster config (Replication, breaker and
		// backoff knobs, heartbeat interval); fill in the wiring only.
		if c.Cluster == nil {
			c.Cluster = &ClusterConfig{}
		}
		c.Cluster.Self = tc.addrs[i]
		if len(c.Cluster.Peers) == 0 {
			c.Cluster.Peers = tc.addrs
		}
		s, err := NewServer(c)
		if err != nil {
			t.Fatalf("NewServer node %d: %v", i, err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(lns[i])
		tc.servers = append(tc.servers, s)
		tc.https = append(tc.https, hs)
	}
	t.Cleanup(func() {
		for i := range tc.https {
			tc.https[i].Close()
			tc.servers[i].Close()
		}
	})
	return tc
}

// kill closes node i's listener and connections — the in-process stand-in
// for a crashed node.
func (tc *testCluster) kill(i int) { tc.https[i].Close() }

// idx maps an advertised address back to its node index.
func (tc *testCluster) idx(t *testing.T, addr string) int {
	t.Helper()
	for i, a := range tc.addrs {
		if a == addr {
			return i
		}
	}
	t.Fatalf("address %s not in cluster", addr)
	return -1
}

// add boots one more node into the cluster after the fact (the join-mode
// path): a fresh listener, a server built from c with the cluster wiring
// filled in, appended to the cluster's bookkeeping. Returns its index.
func (tc *testCluster) add(t *testing.T, c Config) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	eng, _ := c.Engine.(*fakeEngine)
	if c.Cluster == nil {
		c.Cluster = &ClusterConfig{}
	}
	c.Cluster.Self = addr
	s, err := NewServer(c)
	if err != nil {
		ln.Close()
		t.Fatalf("NewServer joiner: %v", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	tc.addrs = append(tc.addrs, addr)
	tc.servers = append(tc.servers, s)
	tc.engines = append(tc.engines, eng)
	tc.https = append(tc.https, hs)
	i := len(tc.servers) - 1
	t.Cleanup(func() { tc.https[i].Close(); tc.servers[i].Close() })
	return i
}

// waitReplDrained waits until every node's replication queue is empty and
// accounted for (enqueued == sent + failed) — the quiescence point after
// which replica stores are stable.
func (tc *testCluster) waitReplDrained(t *testing.T) {
	t.Helper()
	waitFor(t, "replication drain", func() bool {
		for _, s := range tc.servers {
			if s.m.ReplQueueDepth.Load() != 0 ||
				s.m.ReplEnqueued.Load() != s.m.ReplSent.Load()+s.m.ReplFailed.Load() {
				return false
			}
		}
		return true
	})
}

func (tc *testCluster) totalSolves() int {
	total := 0
	for _, e := range tc.engines {
		if e != nil {
			total += e.Solves()
		}
	}
	return total
}

// hashOf canonicalizes a request body the way the server does and returns
// its content hash.
func hashOf(t *testing.T, body string) string {
	t.Helper()
	req, err := DecodeRequest(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c, err := req.Canonicalize()
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	return c.Hash()
}

// TestClusterGlobalDedup is the single-owner contract (Replication 1): the
// same request posted to every node must solve exactly once cluster-wide
// (the owner's single-flight group, reached by forwarding) and every node
// must return bitwise-identical bytes. Replication 1 keeps the origin
// assertions deterministic — with R > 1 the async write-through may land a
// replica on a secondary owner between posts, which is its own test.
func TestClusterGlobalDedup(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int) Config {
		return Config{Workers: 2, QueueCap: 8, Engine: &fakeEngine{},
			Cluster: &ClusterConfig{Replication: 1}}
	})
	owner := NewRing(tc.addrs, 0).Owner(hashOf(t, transientReq))

	var first []byte
	for i, addr := range tc.addrs {
		resp, body := post(t, "http://"+addr, transientReq)
		if resp.StatusCode != 200 {
			t.Fatalf("node %d: status %d (%s)", i, resp.StatusCode, body)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatalf("node %d returned different bytes than node 0", i)
		}
		if addr != owner {
			if origin := resp.Header.Get(originHeader); origin != owner {
				t.Errorf("node %d: X-Wampde-Origin %q, want owner %s", i, origin, owner)
			}
		}
	}
	if got := tc.totalSolves(); got != 1 {
		t.Fatalf("cluster solved %d times for one distinct hash, want 1", got)
	}

	// Second round: every node now answers from memory without forwarding
	// (the non-owners edge-cached the owner's bytes on the first pass).
	var fwdBefore int64
	for _, s := range tc.servers {
		fwdBefore += s.m.ForwardAttempts.Load()
	}
	for i, addr := range tc.addrs {
		resp, body := post(t, "http://"+addr, transientReq)
		if resp.StatusCode != 200 || !bytes.Equal(first, body) {
			t.Fatalf("node %d repeat: status %d, identical=%v", i, resp.StatusCode, bytes.Equal(first, body))
		}
		if xc := resp.Header.Get("X-Cache"); xc != "hit" {
			t.Errorf("node %d repeat: X-Cache %q, want hit", i, xc)
		}
	}
	var fwdAfter int64
	for _, s := range tc.servers {
		fwdAfter += s.m.ForwardAttempts.Load()
	}
	if fwdAfter != fwdBefore {
		t.Errorf("repeat round forwarded %d times, want 0 (edge cache must absorb repeats)", fwdAfter-fwdBefore)
	}
	if got := tc.totalSolves(); got != 1 {
		t.Fatalf("repeat round re-solved: %d total solves, want 1", got)
	}
}

// TestClusterForwardedInSolvesLocally: a request carrying the forward marker
// is solved by the receiver even when the local ring disagrees — the
// no-re-forward rule that makes routing loops impossible.
func TestClusterForwardedInSolvesLocally(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int) Config {
		return Config{Workers: 2, QueueCap: 8, Engine: &fakeEngine{}}
	})
	owner := NewRing(tc.addrs, 0).Owner(hashOf(t, transientReq))
	var notOwner int
	for i, a := range tc.addrs {
		if a != owner {
			notOwner = i
			break
		}
	}
	req, err := http.NewRequest("POST", "http://"+tc.addrs[notOwner]+"/v1/simulate", strings.NewReader(transientReq))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := tc.engines[notOwner].Solves(); got != 1 {
		t.Fatalf("marked-forwarded request solved %d times on the receiver, want 1 (no re-forward)", got)
	}
	if got := tc.servers[notOwner].m.ForwardAttempts.Load(); got != 0 {
		t.Fatalf("receiver attempted %d forwards for a marked request, want 0", got)
	}
}

// TestClusterOwnerDownFallback: with Replication 1 (no replicas to fail
// over to) and the hash owner dead, a surviving node must retry once, fall
// back to a local solve, and still answer 200 — availability over dedup.
func TestClusterOwnerDownFallback(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int) Config {
		return Config{Workers: 2, QueueCap: 8, Engine: &fakeEngine{},
			Cluster: &ClusterConfig{Replication: 1, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}}
	})
	owner := NewRing(tc.addrs, 0).Owner(hashOf(t, transientReq))
	ownerIdx, entryIdx := -1, -1
	for i, a := range tc.addrs {
		if a == owner {
			ownerIdx = i
		} else if entryIdx < 0 {
			entryIdx = i
		}
	}
	tc.kill(ownerIdx)

	resp, body := post(t, "http://"+tc.addrs[entryIdx], transientReq)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d with owner down (%s)", resp.StatusCode, body)
	}
	entry := tc.servers[entryIdx]
	if got := entry.m.ForwardFallbacks.Load(); got != 1 {
		t.Fatalf("ForwardFallbacks = %d, want 1", got)
	}
	if got := tc.engines[entryIdx].Solves(); got != 1 {
		t.Fatalf("entry node solved %d times, want 1 (local fallback)", got)
	}
	if got := tc.engines[ownerIdx].Solves(); got != 0 {
		t.Fatalf("dead owner solved %d times", got)
	}
}

// TestClusterDiskWarmRestart: a server restarted over its store directory
// must serve previously-solved hashes from disk — byte-identical, zero
// engine solves — and promote them into memory.
func TestClusterDiskWarmRestart(t *testing.T) {
	dir := t.TempDir()
	eng1 := &fakeEngine{}
	s1, err := NewServer(Config{Workers: 2, QueueCap: 8, Engine: eng1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp, body1 := post(t, ts1.URL, transientReq)
	if resp.StatusCode != 200 || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first solve: status %d X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	ts1.Close()
	s1.Close()

	eng2 := &fakeEngine{err: fmt.Errorf("must not be called")}
	s2, err := NewServer(Config{Workers: 2, QueueCap: 8, Engine: eng2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	resp, body2 := post(t, ts2.URL, transientReq)
	if resp.StatusCode != 200 {
		t.Fatalf("restart replay: status %d (%s)", resp.StatusCode, body2)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "hit-disk" {
		t.Fatalf("restart replay: X-Cache %q, want hit-disk", xc)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("restart replay returned different bytes than the original solve")
	}
	if got := eng2.Solves(); got != 0 {
		t.Fatalf("restarted server re-solved %d times, want 0", got)
	}
	// The disk hit was promoted: the next lookup is a memory hit.
	resp, _ = post(t, ts2.URL, transientReq)
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("post-promotion: X-Cache %q, want hit", xc)
	}
	if got := s2.m.DiskHits.Load(); got != 1 {
		t.Fatalf("DiskHits = %d, want 1", got)
	}
}

// TestPrewarm: a cold boot solves the whole prewarm set and gates readiness
// on it; a restart over the resulting store skips every entry via disk.
func TestPrewarm(t *testing.T) {
	dir := t.TempDir()
	want := len(prewarmSet())

	// Cold boot: readiness must hold until the gated engine releases.
	eng1 := &fakeEngine{gate: make(chan struct{})}
	s1, err := NewServer(Config{Workers: 2, QueueCap: 8, Engine: eng1, StoreDir: dir, Prewarm: true})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	healthz := func(ts *httptest.Server) string {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 512)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}
	if body := healthz(ts1); !strings.Contains(body, `"ready":false`) {
		t.Fatalf("healthz during prewarm: %s, want ready:false", body)
	}
	close(eng1.gate)
	waitFor(t, "prewarm completion", func() bool { return s1.prewarmDone.Load() })
	if body := healthz(ts1); !strings.Contains(body, `"ready":true`) {
		t.Fatalf("healthz after prewarm: %s, want ready:true", body)
	}
	if got := s1.m.PrewarmSolved.Load(); got != int64(want) {
		t.Fatalf("cold boot PrewarmSolved = %d, want %d", got, want)
	}
	if got := eng1.Solves(); got != want {
		t.Fatalf("cold boot solved %d times, want %d", got, want)
	}
	ts1.Close()
	s1.Close()

	// Warm restart: the whole set comes back from disk, nothing re-solves.
	eng2 := &fakeEngine{err: fmt.Errorf("must not be called")}
	s2, err := NewServer(Config{Workers: 2, QueueCap: 8, Engine: eng2, StoreDir: dir, Prewarm: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	waitFor(t, "restart prewarm completion", func() bool { return s2.prewarmDone.Load() })
	if got := s2.m.PrewarmSkipped.Load(); got != int64(want) {
		t.Fatalf("restart PrewarmSkipped = %d, want %d", got, want)
	}
	if got := s2.m.PrewarmSolved.Load(); got != 0 {
		t.Fatalf("restart PrewarmSolved = %d, want 0", got)
	}
	if got := s2.m.DiskHits.Load(); got != int64(want) {
		t.Fatalf("restart DiskHits = %d, want %d", got, want)
	}
	if got := eng2.Solves(); got != 0 {
		t.Fatalf("restart solved %d times, want 0", got)
	}
}

// TestClusterHealthz: cluster mode annotates /healthz with the node identity
// and membership size.
func TestClusterHealthz(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int) Config {
		return Config{Workers: 1, Engine: &fakeEngine{}}
	})
	resp, err := http.Get("http://" + tc.addrs[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if !strings.Contains(body, `"cluster_nodes":3`) {
		t.Fatalf("healthz %s, want cluster_nodes:3", body)
	}
	if !strings.Contains(body, tc.addrs[0]) {
		t.Fatalf("healthz %s, want node identity %s", body, tc.addrs[0])
	}
}
