package serve

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// stubPeer serves h at a real TCP address — a scriptable stand-in for a
// cluster peer, used to pin how the forwarder treats owner responses the
// real server would be awkward to produce on demand.
func stubPeer(t *testing.T, h http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return ln.Addr().String()
}

// reqOwnedBy returns a request body (from the distinctReq family) whose
// primary owner on the given ring is owner, skipping any hashes already
// used by the caller.
func reqOwnedBy(t *testing.T, nodes []string, owner string, used map[string]bool) string {
	t.Helper()
	ring := NewRing(nodes, 0)
	for i := 0; i < 256; i++ {
		req := distinctReq(i)
		hash := hashOf(t, req)
		if used[hash] {
			continue
		}
		if ring.Owner(hash) == owner {
			used[hash] = true
			return req
		}
	}
	t.Fatalf("no request of 256 candidates hashed to owner %s", owner)
	return ""
}

// newEntryWithStub builds a cluster entry node whose only peer is the stub
// address, returning the entry server, its test URL, and its engine.
func newEntryWithStub(t *testing.T, stub string, tune func(*ClusterConfig)) (*Server, string, *fakeEngine) {
	t.Helper()
	cc := &ClusterConfig{
		Self:        "127.0.0.1:9", // never dialed: the stub owns the test hashes
		Peers:       []string{stub},
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}
	if tune != nil {
		tune(cc)
	}
	eng := &fakeEngine{}
	s, err := NewServer(Config{Workers: 2, QueueCap: 8, Engine: eng, Cluster: cc})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts.URL, eng
}

// TestForwardOwnerStatusPassThrough: an owner that answers — with any
// status — is authoritative. A 429 (saturated owner) and a 408 (owner-side
// deadline) mid-forward pass through verbatim with the origin header, no
// retry, and no local fallback solve.
func TestForwardOwnerStatusPassThrough(t *testing.T) {
	var status atomic.Int64
	stub := stubPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(status.Load()))
		w.Write([]byte(`{"error":"scripted","kind":"test"}`))
	}))
	s, url, eng := newEntryWithStub(t, stub, nil)
	used := map[string]bool{}

	status.Store(http.StatusTooManyRequests)
	resp, _ := post(t, url, reqOwnedBy(t, []string{"127.0.0.1:9", stub}, stub, used))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated owner: status %d, want 429 passed through", resp.StatusCode)
	}
	if origin := resp.Header.Get(originHeader); origin != stub {
		t.Fatalf("X-Wampde-Origin %q, want %s", origin, stub)
	}

	status.Store(http.StatusRequestTimeout)
	resp, _ = post(t, url, reqOwnedBy(t, []string{"127.0.0.1:9", stub}, stub, used))
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("owner deadline: status %d, want 408 passed through", resp.StatusCode)
	}

	if got := s.m.ForwardOK.Load(); got != 2 {
		t.Fatalf("ForwardOK = %d, want 2 (the owner answered both times)", got)
	}
	if got := s.m.ForwardRetries.Load(); got != 0 {
		t.Fatalf("ForwardRetries = %d, want 0 (an answered request is never retried)", got)
	}
	if got := s.m.ForwardFallbacks.Load(); got != 0 {
		t.Fatalf("ForwardFallbacks = %d, want 0", got)
	}
	if got := eng.Solves(); got != 0 {
		t.Fatalf("entry solved %d times for owner-answered requests, want 0", got)
	}
	if got := s.m.Canceled.Load(); got != 1 {
		t.Fatalf("Canceled = %d, want 1 (the passed-through 408)", got)
	}
}

// TestForwardSlowOwnerTimeout: an owner that accepts but never answers
// within the per-attempt budget is a transport failure — the attempt times
// out, retries once, then degrades to a local solve instead of hanging the
// client for the owner's full deadline.
func TestForwardSlowOwnerTimeout(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	stub := stubPeer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold every request until test end
	}))
	s, url, eng := newEntryWithStub(t, stub, func(cc *ClusterConfig) {
		cc.ForwardTimeout = 50 * time.Millisecond
	})
	resp, _ := post(t, url, reqOwnedBy(t, []string{"127.0.0.1:9", stub}, stub, map[string]bool{}))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200 from the local fallback", resp.StatusCode)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("X-Cache %q, want miss (fresh local solve)", xc)
	}
	if got := s.m.ForwardRetries.Load(); got != 1 {
		t.Fatalf("ForwardRetries = %d, want 1 (one retry after the first timeout)", got)
	}
	if got := s.m.ForwardFallbacks.Load(); got != 1 {
		t.Fatalf("ForwardFallbacks = %d, want 1", got)
	}
	if got := s.m.ForwardOK.Load(); got != 0 {
		t.Fatalf("ForwardOK = %d, want 0", got)
	}
	if got := eng.Solves(); got != 1 {
		t.Fatalf("entry solved %d times, want 1 (the fallback)", got)
	}
}

// TestClusterBreakerRecovery is the failure-detection choreography over
// real nodes: a dead owner's breaker opens after K consecutive transport
// failures, open short-circuits requests outright (fallback without a
// connect attempt), and after the cooldown a half-open probe against the
// restarted owner closes it — every transition pinned by its counter.
func TestClusterBreakerRecovery(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int) Config {
		return Config{Workers: 2, QueueCap: 8, Engine: &fakeEngine{},
			Cluster: &ClusterConfig{
				Replication:      1, // single owner: every forward targets exactly the dead node
				ForwardAttempts:  1, // one attempt per request: each post is one breaker sample
				BreakerThreshold: 2,
				BreakerCooldown:  time.Hour, // the fake clock, not the wall clock, ends it
				BackoffBase:      time.Millisecond,
				BackoffMax:       2 * time.Millisecond,
			}}
	})
	// Pick an owner and an entry, and a family of requests the owner owns.
	ownerAddr := tc.addrs[0]
	owner := tc.idx(t, ownerAddr)
	entry := (owner + 1) % 3
	used := map[string]bool{}
	nextReq := func() string { return reqOwnedBy(t, tc.addrs[:3], ownerAddr, used) }
	es := tc.servers[entry]
	now := time.Now()
	es.breakers.now = func() time.Time { return now }

	tc.kill(owner)

	// Two refused connections open the breaker (threshold 2); both requests
	// still answer 200 via the local fallback.
	for i := 0; i < 2; i++ {
		if resp, body := post(t, "http://"+tc.addrs[entry], nextReq()); resp.StatusCode != 200 {
			t.Fatalf("post %d with owner dead: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if got := es.m.BreakerOpens.Load(); got != 1 {
		t.Fatalf("BreakerOpens = %d after %d refused connections, want 1", got, 2)
	}
	// Open: the next request is short-circuited — no dial, straight to the
	// fallback.
	if resp, _ := post(t, "http://"+tc.addrs[entry], nextReq()); resp.StatusCode != 200 {
		t.Fatal("short-circuited request did not fall back to a local solve")
	}
	if got := es.m.BreakerShortCircuits.Load(); got != 1 {
		t.Fatalf("BreakerShortCircuits = %d, want 1", got)
	}
	if got := es.m.ForwardFallbacks.Load(); got != 3 {
		t.Fatalf("ForwardFallbacks = %d, want 3", got)
	}

	// Restart the owner on its old address and let the cooldown elapse: the
	// next request rides the half-open probe, succeeds, and closes the
	// breaker.
	ln, err := net.Listen("tcp", ownerAddr)
	if err != nil {
		t.Fatalf("rebinding the owner address: %v", err)
	}
	hs := &http.Server{Handler: tc.servers[owner].Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	now = now.Add(2 * time.Hour)

	resp, _ := post(t, "http://"+tc.addrs[entry], nextReq())
	if resp.StatusCode != 200 {
		t.Fatalf("probe-carried request: status %d", resp.StatusCode)
	}
	if origin := resp.Header.Get(originHeader); origin != ownerAddr {
		t.Fatalf("probe-carried request served by %q, want the recovered owner %s", origin, ownerAddr)
	}
	if got := es.m.BreakerProbes.Load(); got != 1 {
		t.Fatalf("BreakerProbes = %d, want 1", got)
	}
	if got := es.m.BreakerCloses.Load(); got != 1 {
		t.Fatalf("BreakerCloses = %d, want 1", got)
	}
	if got := es.m.ForwardOK.Load(); got != 1 {
		t.Fatalf("ForwardOK = %d, want 1 (the recovered owner answered)", got)
	}
	// Closed again: the next owned hash forwards normally, no new probe.
	if resp, _ := post(t, "http://"+tc.addrs[entry], nextReq()); resp.StatusCode != 200 {
		t.Fatal("post after recovery failed")
	}
	if got := es.m.BreakerProbes.Load(); got != 1 {
		t.Fatalf("BreakerProbes grew to %d after recovery, want 1", got)
	}
}

// TestFaultForwardTransportBackoff: injected transport failures on the
// first two attempts are retried on the deterministic backoff schedule and
// the third attempt lands — exactly two retries, one success, no fallback.
func TestFaultForwardTransportBackoff(t *testing.T) {
	disarm := faultinject.Arm(faultinject.NewPlan().
		Fail(faultinject.SiteForwardTransport, faultinject.Times(2)))
	defer disarm()
	tc := newTestCluster(t, 2, func(i int) Config {
		return Config{Workers: 2, QueueCap: 8, Engine: &fakeEngine{},
			Cluster: &ClusterConfig{
				Replication:     1,
				ForwardAttempts: 3,
				BackoffBase:     time.Millisecond,
				BackoffMax:      4 * time.Millisecond,
				BackoffSeed:     99,
			}}
	})
	hash := hashOf(t, transientReq)
	owner := tc.idx(t, tc.servers[0].ring().Owner(hash))
	entry := 1 - owner

	resp, _ := post(t, "http://"+tc.addrs[entry], transientReq)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	es := tc.servers[entry]
	if got := es.m.ForwardRetries.Load(); got != 2 {
		t.Fatalf("ForwardRetries = %d, want 2", got)
	}
	if got := es.m.ForwardOK.Load(); got != 1 {
		t.Fatalf("ForwardOK = %d, want 1", got)
	}
	if got := es.m.ForwardFallbacks.Load(); got != 0 {
		t.Fatalf("ForwardFallbacks = %d, want 0", got)
	}
	if got := tc.engines[owner].Solves(); got != 1 {
		t.Fatalf("owner solved %d times, want 1", got)
	}
	if got := tc.engines[entry].Solves(); got != 0 {
		t.Fatalf("entry solved %d times, want 0", got)
	}
}
