// Package wampde is a Go implementation of the WaMPDE — the Warped
// Multirate Partial Differential Equation of Narayan & Roychowdhury,
// "Multi-Time Simulation of Voltage-Controlled Oscillators" (DAC 1999) —
// together with the complete simulation stack it rests on: an MNA circuit
// simulator, transient/shooting/harmonic-balance analyses, the unwarped
// MPDE, and dense/sparse/iterative linear algebra, all on the standard
// library alone.
//
// The WaMPDE represents a forced oscillator's response as a bivariate
// waveform x̂(t1, t2) — 1-periodic in the *warped* time t1 — together with
// an explicitly computed local frequency ω(t2):
//
//	ω(t2)·∂q(x̂)/∂t1 + ∂q(x̂)/∂t2 + f(x̂, u(t2)) = 0
//
// Evaluating x̂ along the warped path x(t) = x̂(∫₀ᵗω, t) solves the
// original circuit equations, with phase error bounded by a phase condition
// rather than accumulating as in transient simulation.
//
// # Quick start
//
//	sys := &wampde.SimpleVCO{ /* L, C0, G1, G3, TauM, Gamma, Ctl */ }
//	ic, w0, _ := wampde.OscillatorIC(sys, guess, Tguess, wampde.ICOptions{})
//	res, _ := wampde.RunEnvelope(sys, ic, w0, tEnd, wampde.EnvelopeOptions{H2: h2})
//	fmt.Println(res.OmegaSeries()) // the local frequency vs time
//
// See examples/ for runnable programs and cmd/ for the harnesses that
// regenerate every figure of the paper.
package wampde

import (
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dae"
	"repro/internal/hb"
	"repro/internal/mpde"
	"repro/internal/netlist"
	"repro/internal/shooting"
	"repro/internal/solverr"
	"repro/internal/transient"
	"repro/internal/warp"
	"repro/internal/wave"
)

// System is the differential-algebraic form d/dt q(x) + f(x, u(t)) = 0 that
// every analysis in this library operates on (the paper's eq. (12)).
type System = dae.System

// Autonomous marks self-oscillating systems and names their oscillation
// variable for phase conditions.
type Autonomous = dae.Autonomous

// Ready-made DAE models.
type (
	// SimpleVCO is a compact three-state voltage-controlled oscillator.
	SimpleVCO = dae.SimpleVCO
	// VanDerPol is the classical van der Pol oscillator.
	VanDerPol = dae.VanDerPol
	// LinearLC is a (lossy) linear LC tank.
	LinearLC = dae.LinearLC
	// LinearRC is a driven RC one-pole.
	LinearRC = dae.LinearRC
)

// Circuit construction (MNA).
type (
	// Circuit is a device netlist under construction.
	Circuit = circuit.Circuit
	// CircuitSystem is a compiled circuit implementing System.
	CircuitSystem = circuit.System
	// Waveform is a scalar source waveform.
	Waveform = circuit.Waveform
	// VCO is the paper's §5 MEMS-varactor VCO.
	VCO = circuit.VCO
	// VCOParams are its component values.
	VCOParams = circuit.VCOParams
)

// NewCircuit returns an empty circuit netlist.
func NewCircuit() *Circuit { return circuit.New() }

// ParseNetlist parses the SPICE-flavoured netlist format.
func ParseNetlist(src string) (*Circuit, error) { return netlist.Parse(src) }

// NewPaperVCO builds the paper's §5 VCO: air=false gives the vacuum-cavity
// configuration of Figures 7–9, air=true the air-damped configuration of
// Figures 10–12.
func NewPaperVCO(air bool) (*VCO, error) {
	if air {
		return circuit.NewVCO(circuit.AirVCOParams())
	}
	return circuit.NewVCO(circuit.DefaultVCOParams())
}

// VCONominalFreq is the paper's §5 nominal oscillation frequency (0.75 MHz).
const VCONominalFreq = circuit.VCONominalFreq

// WaMPDE solvers (the paper's contribution).
type (
	// EnvelopeOptions configures the envelope-following WaMPDE solver.
	EnvelopeOptions = core.EnvelopeOptions
	// EnvelopeResult is a solved envelope: x̂(t1,t2), ω(t2), φ(t2).
	EnvelopeResult = core.EnvelopeResult
	// QPOptions configures the quasiperiodic WaMPDE solver.
	QPOptions = core.QPOptions
	// QPResult is a quasiperiodic WaMPDE steady state.
	QPResult = core.QPResult
	// QPGuess is the initial iterate for the quasiperiodic solver.
	QPGuess = core.QPGuess
	// ICOptions configures the oscillator initial-condition computation.
	ICOptions = core.ICOptions
	// PhaseKind selects the phase condition (eq. (20) or time-domain).
	PhaseKind = core.PhaseKind
)

// Phase conditions.
const (
	PhaseDerivativeZero = core.PhaseDerivativeZero
	PhaseFixValue       = core.PhaseFixValue
	PhaseSpectralImag   = core.PhaseSpectralImag
)

// OscillatorIC computes the WaMPDE's natural initial condition: the
// periodic steady state of the unforced oscillator, sampled on the warped-
// time grid (§4.1).
func OscillatorIC(sys Autonomous, xGuess []float64, tGuess float64, opt ICOptions) ([]float64, float64, error) {
	return core.InitialCondition(sys, xGuess, tGuess, opt)
}

// RunEnvelope integrates the WaMPDE in t2 from the given bivariate initial
// condition, producing the local frequency ω(t2) and the bivariate waveform
// (Figures 7, 8, 10, 11).
func RunEnvelope(sys Autonomous, xhat0 []float64, omega0, t2End float64, opt EnvelopeOptions) (*EnvelopeResult, error) {
	return core.Envelope(sys, xhat0, omega0, t2End, opt)
}

// RunQuasiperiodic solves the WaMPDE with periodic boundary conditions on
// both axes for FM-quasiperiodic steady states (§4.1).
func RunQuasiperiodic(sys Autonomous, t2Period float64, guess *QPGuess, opt QPOptions) (*QPResult, error) {
	return core.Quasiperiodic(sys, t2Period, guess, opt)
}

// QPGuessFromEnvelope samples the settled tail of an envelope run as the
// quasiperiodic solver's initial iterate.
func QPGuessFromEnvelope(res *EnvelopeResult, t2Period float64, n1, n2 int) (*QPGuess, error) {
	return core.GuessFromEnvelope(res, t2Period, n1, n2)
}

// Baseline analyses.
type (
	// TransientOptions configures direct numerical integration.
	TransientOptions = transient.Options
	// TransientResult is a transient waveform.
	TransientResult = transient.Result
	// ShootingOptions configures the shooting PSS solver.
	ShootingOptions = shooting.Options
	// PSS is a periodic steady state from shooting.
	PSS = shooting.PSS
	// HBOptions configures harmonic balance.
	HBOptions = hb.Options
	// HBSolution is a harmonic-balance steady state.
	HBSolution = hb.Solution
	// MPDEOptions configures the unwarped multi-time baseline.
	MPDEOptions = mpde.Options
	// MPDESolution is a bivariate MPDE steady state.
	MPDESolution = mpde.Solution
	// TwoTone adapts a System for the MPDE's bivariate inputs.
	TwoTone = mpde.TwoTone
)

// Integration methods for RunTransient.
const (
	BE   = transient.BE
	Trap = transient.Trap
	BDF2 = transient.BDF2
)

// RunTransient integrates sys by direct numerical integration — the
// conventional method the paper benchmarks against.
func RunTransient(sys System, x0 []float64, t0, t1 float64, opt TransientOptions) (*TransientResult, error) {
	return transient.Simulate(sys, x0, t0, t1, opt)
}

// DCOperatingPoint solves f(x, u(t0)) = 0 with Newton and gmin stepping.
func DCOperatingPoint(sys System, t0 float64, x []float64) error {
	return transient.DCOperatingPoint(sys, t0, x, transient.DCOptions{})
}

// ShootingPSS computes a forced periodic steady state by shooting.
func ShootingPSS(sys System, x0 []float64, period float64, opt ShootingOptions) (*PSS, error) {
	return shooting.Forced(sys, x0, period, opt)
}

// AutonomousPSS computes an oscillator's limit cycle and period by shooting.
func AutonomousPSS(sys Autonomous, x0 []float64, tGuess float64, opt ShootingOptions) (*PSS, error) {
	return shooting.Autonomous(sys, x0, tGuess, opt)
}

// HBForced computes a forced periodic steady state by harmonic balance.
func HBForced(sys System, period float64, guess [][]float64, opt HBOptions) (*HBSolution, error) {
	return hb.Forced(sys, period, guess, opt)
}

// HBAutonomous computes an oscillator steady state (waveform and frequency)
// by autonomous harmonic balance.
func HBAutonomous(sys Autonomous, tGuess float64, guess [][]float64, opt HBOptions) (*HBSolution, error) {
	return hb.Autonomous(sys, tGuess, guess, opt)
}

// RunMPDE solves the unwarped multi-time MPDE with doubly periodic boundary
// conditions — the §2 prior art, adequate for AM but not FM.
func RunMPDE(sys *TwoTone, t1p, t2p float64, opt MPDEOptions) (*MPDESolution, error) {
	return mpde.Quasiperiodic(sys, t1p, t2p, nil, opt)
}

// Signal analysis.
type (
	// Series is a sampled waveform.
	Series = wave.Series
	// FMSignal is the paper's §3 prototypical FM signal.
	FMSignal = warp.FMSignal
	// AMSignal is the paper's §3 two-tone AM signal.
	AMSignal = warp.AMSignal
)

// InstFrequency estimates instantaneous frequency from zero crossings.
func InstFrequency(t, y []float64) *Series { return wave.InstFrequency(t, y) }

// UnwrappedPhase returns the cumulative oscillation phase in cycles.
func UnwrappedPhase(t, y []float64) *Series { return wave.UnwrappedPhase(t, y) }

// PhaseErrorAt measures |Δphase| in cycles between two unwrapped phases —
// the Figure 12 metric.
func PhaseErrorAt(a, b *Series, t float64) float64 { return wave.PhaseErrorAt(a, b, t) }

// Frequency-domain WaMPDE (paper eq. (19)–(20), footnote 4's
// "mixed frequency-time method").
type (
	// SpectralOptions configures the harmonic-coefficient envelope solver.
	SpectralOptions = core.SpectralOptions
	// SpectralResult holds harmonic coefficients X̂(t2) and ω(t2).
	SpectralResult = core.SpectralResult
)

// RunSpectralEnvelope integrates the WaMPDE with the truncated Fourier
// series of eq. (18) as the t1 representation and the harmonic balance
// residual of eq. (19) as the step equations.
func RunSpectralEnvelope(sys Autonomous, xhat0 []float64, omega0, t2End float64, opt SpectralOptions) (*SpectralResult, error) {
	return core.SpectralEnvelope(sys, xhat0, omega0, t2End, opt)
}

// Solver failure taxonomy (see internal/solverr and DESIGN.md, "Failure
// semantics"). Every analysis above reports failures as a *SolveError
// carrying a Kind, the failing stage, position/progress fields and the
// recovery trail the escalation ladders accumulated; the serving layer maps
// kinds to HTTP statuses and the cmd drivers map them to process exit
// codes. Use errors.As to recover the structure, or the helpers below.
type (
	// SolveError is the structured failure every solver returns.
	SolveError = solverr.Error
	// SolveErrorKind classifies a failure for dispatch.
	SolveErrorKind = solverr.Kind
)

// The failure kinds.
const (
	KindBadInput   = solverr.KindBadInput
	KindSingular   = solverr.KindSingular
	KindBreakdown  = solverr.KindBreakdown
	KindStagnation = solverr.KindStagnation
	KindNonFinite  = solverr.KindNonFinite
	KindBudget     = solverr.KindBudget
	KindCanceled   = solverr.KindCanceled
)

// SolveKindOf returns the failure kind of the outermost SolveError in err's
// chain (KindUnknown for unclassified errors).
func SolveKindOf(err error) SolveErrorKind { return solverr.KindOf(err) }

// SolveTrailOf collects the recovery trail recorded along err's chain,
// outermost supervisor first.
func SolveTrailOf(err error) []string { return solverr.TrailOf(err) }

// SolveExitCode maps an error to the per-kind process exit code the cmd
// drivers use (0 success, 2 bad input, 8 canceled, ...).
func SolveExitCode(err error) int { return solverr.ExitCode(err) }
