#!/bin/sh
# Repository check tiers, in increasing cost:
#
#   tier 1      build + full test suite (the gate every change must pass)
#   tier 2      vet + race detector over the suite (-short skips the longest
#               solver runs; the parallel kernels all execute under the
#               race detector via the unit and determinism tests)
#   fault       fault-injection tier: the armed suite (TestFault*) under the
#               race detector, without -short so the armed golden-tolerance
#               Figure-7 runs execute too. Proves every escalation rung fires
#               against injected failures (see DESIGN.md, Failure semantics)
#               while the race detector watches the supervised paths.
#   bench       hot-loop benchmark snapshot: runs the envelope, quasiperiodic
#               and allocation-budget benchmarks with -benchmem and writes the
#               parsed numbers (ns/op, B/op, allocs/op) to a baseline file
#               (second argument, default BENCH_pr4.json) via cmd/benchjson.
#               Not part of "all" — timings are machine-specific, so refresh
#               the baseline deliberately. Historical baselines (BENCH_pr2.json,
#               BENCH_pr3.json) stay committed; pass the filename to overwrite
#               one explicitly.
#   bench-check rerun the same benchmarks and compare against the committed
#               baseline with cmd/benchjson -check: an allocs/op regression
#               fails, ns/op drift beyond ±20% only warns.
#   ring-bench  N-stage ring-VCO scaling sweep: runs BenchmarkRingScaling
#               (envelope-following, stages 3..31) and BenchmarkQPRingScaling
#               (global quasiperiodic solve, stages 3..15) — dense bordered
#               Jacobian vs the matrix-free spectral operator in both —
#               snapshots the curves to a baseline file (second argument,
#               default BENCH_pr9.json; BENCH_pr7.json is the pre-QP
#               historical baseline), and gates the run with cmd/benchjson
#               -ring-gate. Expensive (tens of minutes — the 31-stage
#               settle+shoot preamble and dense factorizations dominate);
#               not part of "all".
#   ring-bench-check rerun the scaling sweep and apply only the -ring-gate
#               crossover claim (matrix-free >= 3x dense at 15 stages, never
#               slower from there up, enforced per benchmark family). A pure
#               within-run ratio, so it holds on any machine, unlike the
#               ns/op baselines.
#   serve       service smoke tier: builds wampde-server and wampde-load with
#               the race detector, boots the server on a free port with a
#               deliberately small worker/queue budget, and runs the load
#               harness with -check — the seeded 64-request mix (≥87%
#               cache/single-flight hit rate, zero 5xx, bitwise-identical
#               replays), one deadline-exceeded request (408 + partial) and
#               a saturating burst (≥1 admission rejection).
#   serve-bench rerun the load harness with -bench and snapshot its
#               throughput/latency lines to a baseline file (second
#               argument, default BENCH_pr5.json) via cmd/benchjson. Like
#               bench, not part of "all" — refresh deliberately.
#   sweep       batch-endpoint tier, two passes of the load harness -sweep
#               -check. First a race-built server runs the correctness
#               gates: cache dedup between /v1/sweep points and single
#               solves (byte-identical both directions) and kill+resume
#               (the resumed stream emits exactly the missing points and
#               the server re-solves at most the one point that was in
#               flight). Then a plain build runs the amortization gate — a
#               200-point vctl sweep at ≤ 0.5× the wall-clock of the same
#               number of independent cold solves — because the race
#               runtime serializes the lanes and would distort the ratio.
#   sweep-bench rerun the sweep phases with -bench and snapshot the
#               per-point/cold-single numbers to a baseline file (second
#               argument, default BENCH_pr6.json) via cmd/benchjson. Not
#               part of "all" — refresh deliberately.
#   sweep-bench-check rerun the sweep phases and compare against the
#               committed baseline with cmd/benchjson -check.
#   cluster     self-healing cluster tier: race-builds wampde-server and
#               wampde-load, boots three nodes on free ports (-addr-file +
#               @file peer resolution) with disk stores, prewarm, R=2
#               replication, heartbeats and a seeded backoff, then drives
#               the join/leave/kill choreography: mix (every request posted
#               to every node twice — bitwise-identical bodies from all
#               nodes, exactly one engine solve per distinct hash
#               cluster-wide, every fresh solve written through to its
#               replica owner with zero failures), warm restart of node 1
#               (replays byte-identical with zero engine solves anywhere;
#               its prewarm came back from its disk store), a node joining
#               mid-traffic (background replay keeps flowing while node 4
#               boots with -join; the joiner must stream in exactly its
#               consistent-hash share — handoff counters checked against
#               the harness's own ring math, within the rebalance bound
#               pinned in shard_test.go), then killing node 3 outright
#               (every body the cluster ever served still comes back 200
#               and byte-identical from the survivors with zero re-solves
#               and zero 5xx — replication lost nothing), and finally the
#               breaker gate (fresh dead-owner requests all answer 200
#               while breaker_opens/short_circuits fire and the jittered
#               backoff retries run; the exact counter choreography is
#               pinned in-process by breaker_test.go/forward_test.go).
#   cluster-bench rerun the cluster mix against a plain (non-race) build and
#               snapshot throughput/latency/forward-latency lines to a
#               baseline file (second argument, default BENCH_pr8.json) via
#               cmd/benchjson. Not part of "all" — refresh deliberately.
#   cluster-bench-check rerun the cluster mix and compare against the
#               committed baseline with cmd/benchjson -check.
#   converter   switch-mode converter workload tier: the converter goldens
#               (PWM/switch/diode device tests, generator tests, the
#               transient-vs-MPDE ripple agreement gate, the serve catalog
#               and cached-replay tests) plus the end-to-end duty-sweep
#               smoke over HTTP, then one pass of BenchmarkConverterRipple
#               (MPDE ripple envelope vs brute-force transient under slow
#               duty modulation) gated with cmd/benchjson -converter-gate —
#               the mpde mode must not be slower than the transient. A
#               within-run ratio like ring-bench-check, so it holds on any
#               machine.
#   converter-bench rerun BenchmarkConverterRipple, snapshot the pair to a
#               baseline file (second argument, default BENCH_pr10.json)
#               via cmd/benchjson, and apply the same -converter-gate. Like
#               bench, not part of "all" — refresh deliberately.
#
# Run ./ci.sh for everything, ./ci.sh 1 / ./ci.sh 2 for one tier,
# ./ci.sh bench [FILE] to refresh a baseline, or ./ci.sh bench-check [FILE]
# to gate against one.
set -eu
cd "$(dirname "$0")"

tier="${1:-all}"
benchfile="${2:-BENCH_pr4.json}"
benchre='BenchmarkFig07VCOEnvelopeVacuum$|BenchmarkAblationChordNewton$|BenchmarkAblationGMRESRecycle$|BenchmarkQuasiperiodicWaMPDE$|BenchmarkHotLoopAllocs$|BenchmarkGMRESAllocs$'

if [ "$tier" = 1 ] || [ "$tier" = all ]; then
	echo "== tier 1: build + tests"
	go build ./...
	go test ./...
fi

if [ "$tier" = 2 ] || [ "$tier" = all ]; then
	echo "== tier 2: vet + race detector"
	go vet ./...
	go test -race -short ./...
fi

if [ "$tier" = fault ] || [ "$tier" = all ]; then
	echo "== fault: armed fault-injection suite under the race detector"
	go test -race -run 'TestFault' ./...
fi

run_serve() {
	mode="$1" # check | bench
	tmp="$(mktemp -d)"
	trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
	go build -race -o "$tmp/wampde-server" ./cmd/wampde-server
	go build -race -o "$tmp/wampde-load" ./cmd/wampde-load
	"$tmp/wampde-server" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
		-workers 2 -queue 2 -solver-workers 2 &
	server_pid=$!
	i=0
	while [ ! -s "$tmp/addr" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "ci: server did not start" >&2; exit 1; }
		sleep 0.1
	done
	url="http://$(cat "$tmp/addr")"
	if [ "$mode" = bench ]; then
		"$tmp/wampde-load" -url "$url" -check -bench | tee "$tmp/load.out"
		go run ./cmd/benchjson <"$tmp/load.out" >"$benchfile"
		cat "$benchfile"
	else
		"$tmp/wampde-load" -url "$url" -check
	fi
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true
	trap - EXIT
	rm -rf "$tmp"
}

if [ "$tier" = serve ] || [ "$tier" = all ]; then
	echo "== serve: HTTP service smoke (server + load harness, race detector)"
	run_serve check
fi

if [ "$tier" = serve-bench ]; then
	benchfile="${2:-BENCH_pr5.json}"
	echo "== serve-bench: snapshotting service load numbers to $benchfile"
	run_serve bench
fi

# One pass of the sweep harness against a freshly booted server. The server
# gets one worker per lane (-workers 4) and a single-threaded solver per
# worker, so the amortization measurement is lane parallelism rather than
# intra-solve parallelism fighting over cores.
#   $1: extra go build flags ("-race" or "")
#   $2...: extra wampde-load flags
run_sweep_pass() {
	buildflags="$1"
	shift
	tmp="$(mktemp -d)"
	trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
	# shellcheck disable=SC2086 # buildflags is deliberately word-split
	go build $buildflags -o "$tmp/wampde-server" ./cmd/wampde-server
	go build $buildflags -o "$tmp/wampde-load" ./cmd/wampde-load
	"$tmp/wampde-server" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
		-workers 4 -queue 8 -solver-workers 1 &
	server_pid=$!
	i=0
	while [ ! -s "$tmp/addr" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "ci: server did not start" >&2; exit 1; }
		sleep 0.1
	done
	url="http://$(cat "$tmp/addr")"
	# No pipe: `load | tee` would let set -e see only tee's exit status.
	if ! "$tmp/wampde-load" -url "$url" -requests 0 -burst 0 -deadline-ms 0 \
		-sweep -check "$@" >"$loadout"; then
		cat "$loadout"
		echo "ci: sweep load harness failed" >&2
		exit 1
	fi
	cat "$loadout"
	kill "$server_pid" 2>/dev/null || true
	wait "$server_pid" 2>/dev/null || true
	trap - EXIT
	rm -rf "$tmp"
}

loadout="$(mktemp)"

if [ "$tier" = sweep ] || [ "$tier" = all ]; then
	echo "== sweep: correctness gates under race (dedup, resume)"
	run_sweep_pass -race -sweep-gate 0
	echo "== sweep: amortization gate against a plain build"
	run_sweep_pass ""
fi

if [ "$tier" = sweep-bench ]; then
	benchfile="${2:-BENCH_pr6.json}"
	echo "== sweep-bench: snapshotting sweep amortization numbers to $benchfile"
	run_sweep_pass "" -bench
	go run ./cmd/benchjson <"$loadout" >"$benchfile"
	cat "$benchfile"
fi

if [ "$tier" = sweep-bench-check ]; then
	benchfile="${2:-BENCH_pr6.json}"
	echo "== sweep-bench-check: comparing sweep amortization against $benchfile"
	run_sweep_pass "" -bench
	go run ./cmd/benchjson -check "$benchfile" <"$loadout"
fi

# One full pass of the self-healing cluster story: 3 nodes with R=2
# replication and heartbeats, a warm restart, a mid-traffic join with
# segment-streamed handoff, a kill with the zero-loss gate, and the breaker
# choreography against the dead node. Node logs land in $WAMPDE_LOG_DIR when
# set (CI uploads them on failure), else in the temp dir.
#   $1: go build flags ("-race" or "")
#   $2: mode (check | bench)
run_cluster() {
	buildflags="$1"
	mode="$2"
	tmp="$(mktemp -d)"
	logdir="${WAMPDE_LOG_DIR:-$tmp}"
	mkdir -p "$logdir"
	trap 'for p in "$tmp"/pid*; do kill "$(cat "$p")" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT
	# shellcheck disable=SC2086 # buildflags is deliberately word-split
	go build $buildflags -o "$tmp/wampde-server" ./cmd/wampde-server
	go build $buildflags -o "$tmp/wampde-load" ./cmd/wampde-load
	peers="@$tmp/addr1,@$tmp/addr2,@$tmp/addr3"
	# Shared cluster knobs: R=2 write-through, heartbeats fast enough that a
	# join propagates within a phase, a 3-failure breaker with a seeded
	# jittered backoff (deterministic retry schedule), and a capped disk tier.
	knobs="-replication 2 -heartbeat-interval 250ms -breaker-threshold 3
		-breaker-cooldown 2s -backoff-base 25ms -backoff-max 250ms
		-backoff-seed 7 -store-max-mb 64 -workers 2 -queue 8 -solver-workers 1"

	start_node() { # $1: node number, $2: listen address
		# shellcheck disable=SC2086 # knobs is deliberately word-split
		"$tmp/wampde-server" -addr "$2" -addr-file "$tmp/addr$1" \
			-store-dir "$tmp/store$1" -prewarm -peers "$peers" $knobs \
			>>"$logdir/cluster-node$1.log" 2>&1 &
		echo $! >"$tmp/pid$1"
	}
	stop_node() { # $1: node number
		kill "$(cat "$tmp/pid$1")" 2>/dev/null || true
		wait "$(cat "$tmp/pid$1")" 2>/dev/null || true
	}
	wait_addr() { # $1: node number
		i=0
		while [ ! -s "$tmp/addr$1" ]; do
			i=$((i + 1))
			[ "$i" -gt 100 ] && { echo "ci: cluster node $1 did not start" >&2; exit 1; }
			sleep 0.1
		done
	}

	start_node 1 127.0.0.1:0
	start_node 2 127.0.0.1:0
	start_node 3 127.0.0.1:0
	for n in 1 2 3; do wait_addr "$n"; done
	addr1="$(cat "$tmp/addr1")"
	addr2="$(cat "$tmp/addr2")"
	addr3="$(cat "$tmp/addr3")"
	nodes="http://$addr1,http://$addr2,http://$addr3"
	for a in "$addr1" "$addr2" "$addr3"; do
		"$tmp/wampde-load" -wait-ready "http://$a"
	done

	echo "-- cluster: mix phase (byte-identity + global single-flight + replication)"
	mixflags="-check"
	[ "$mode" = bench ] && mixflags="-check -bench"
	# shellcheck disable=SC2086 # mixflags is deliberately word-split
	if ! "$tmp/wampde-load" -cluster "$nodes" -cluster-phase mix \
		-cluster-bodies "$tmp/bodies.json" -cluster-replication 2 \
		-distinct 16 $mixflags >"$loadout"; then
		cat "$loadout"
		echo "ci: cluster mix phase failed" >&2
		exit 1
	fi
	cat "$loadout"

	echo "-- cluster: killing node 1 and restarting it on $addr1 (warm disk store)"
	stop_node 1
	start_node 1 "$addr1"
	"$tmp/wampde-load" -wait-ready "http://$addr1"
	"$tmp/wampde-load" -cluster "$nodes" -cluster-phase restart \
		-cluster-bodies "$tmp/bodies.json" -cluster-restarted "http://$addr1" -check

	echo "-- cluster: node 4 joins mid-traffic (segment-streamed handoff)"
	# The joiner gets only a seed (-join -peers @addr1), no prewarm — every
	# byte it serves must arrive over the handoff stream. Replay traffic
	# keeps flowing against the old nodes while it boots and pulls.
	# shellcheck disable=SC2086 # knobs is deliberately word-split
	"$tmp/wampde-server" -addr 127.0.0.1:0 -addr-file "$tmp/addr4" \
		-store-dir "$tmp/store4" -join -peers "@$tmp/addr1" $knobs \
		>>"$logdir/cluster-node4.log" 2>&1 &
	echo $! >"$tmp/pid4"
	"$tmp/wampde-load" -cluster "$nodes" -cluster-phase replay \
		-cluster-bodies "$tmp/bodies.json" -check
	wait_addr 4
	addr4="$(cat "$tmp/addr4")"
	"$tmp/wampde-load" -wait-ready "http://$addr4"
	"$tmp/wampde-load" -cluster "$nodes" -cluster-phase join \
		-cluster-bodies "$tmp/bodies.json" -cluster-joined "http://$addr4" \
		-cluster-replication 2 -check

	echo "-- cluster: killing node 3 — zero cached bytes and zero availability lost"
	stop_node 3
	survivors="http://$addr1,http://$addr2,http://$addr4"
	"$tmp/wampde-load" -cluster "$survivors" -cluster-phase kill \
		-cluster-bodies "$tmp/bodies.json" -check

	echo "-- cluster: breaker + jittered backoff against the dead owner"
	"$tmp/wampde-load" -cluster "$survivors" -cluster-phase breaker \
		-cluster-ring "$addr1,$addr2,$addr3,$addr4" -cluster-dead "$addr3" \
		-distinct 6 -check

	stop_node 1
	stop_node 2
	stop_node 4
	trap - EXIT
	rm -rf "$tmp"
}

if [ "$tier" = cluster ] || [ "$tier" = all ]; then
	echo "== cluster: 3-node sharded serving gates (race detector)"
	run_cluster -race check
fi

if [ "$tier" = cluster-bench ]; then
	benchfile="${2:-BENCH_pr8.json}"
	echo "== cluster-bench: snapshotting cluster mix numbers to $benchfile"
	run_cluster "" bench
	go run ./cmd/benchjson <"$loadout" >"$benchfile"
	cat "$benchfile"
fi

if [ "$tier" = cluster-bench-check ]; then
	benchfile="${2:-BENCH_pr8.json}"
	echo "== cluster-bench-check: comparing cluster mix against $benchfile"
	run_cluster "" bench
	go run ./cmd/benchjson -check "$benchfile" <"$loadout"
fi

rm -f "$loadout"

# One pass of BenchmarkConverterRipple into $convout: the MPDE ripple
# envelope and the brute-force transient over the identical duty-modulated
# buck scenario. A temp file rather than a pipe so set -e sees go test's
# exit status, and so one run can feed both the JSON snapshot and the
# wall-clock gate.
run_converter_bench() {
	convout="$(mktemp)"
	if ! go test -run '^$' -bench 'BenchmarkConverterRipple' \
		-benchtime 1x -timeout 30m . >"$convout"; then
		cat "$convout"
		echo "ci: converter benchmark failed" >&2
		exit 1
	fi
	cat "$convout"
}

if [ "$tier" = converter ] || [ "$tier" = all ]; then
	echo "== converter: workload goldens + duty-sweep smoke"
	go test -run 'Converter|RippleEnvelope|PWM|PWLDiode|SwitchConductance|DutySweep' ./...
	echo "== converter: MPDE-vs-transient wall-clock gate"
	run_converter_bench
	go run ./cmd/benchjson -converter-gate <"$convout"
	rm -f "$convout"
fi

if [ "$tier" = converter-bench ]; then
	benchfile="${2:-BENCH_pr10.json}"
	echo "== converter-bench: snapshotting converter ripple numbers to $benchfile"
	run_converter_bench
	go run ./cmd/benchjson <"$convout" >"$benchfile"
	cat "$benchfile"
	go run ./cmd/benchjson -converter-gate <"$convout"
	rm -f "$convout"
fi

if [ "$tier" = bench ]; then
	echo "== bench: snapshotting hot-loop benchmarks to $benchfile"
	go test -run '^$' -bench "$benchre" \
		-benchmem -benchtime 3x . | go run ./cmd/benchjson >"$benchfile"
	cat "$benchfile"
fi

if [ "$tier" = bench-check ]; then
	echo "== bench-check: comparing hot-loop benchmarks against $benchfile"
	go test -run '^$' -bench "$benchre" \
		-benchmem -benchtime 3x . | go run ./cmd/benchjson -check "$benchfile"
fi

# One full scaling sweep (envelope + quasiperiodic families) into $ringout.
# A temp file rather than a pipe so set -e sees go test's exit status, and so
# one run can feed both the JSON snapshot and the ratio gate.
run_ring_sweep() {
	ringout="$(mktemp)"
	if ! go test -run '^$' -bench 'BenchmarkRingScaling|BenchmarkQPRingScaling' \
		-benchtime 1x -timeout 90m . >"$ringout"; then
		cat "$ringout"
		echo "ci: ring scaling benchmark failed" >&2
		exit 1
	fi
	cat "$ringout"
}

if [ "$tier" = ring-bench ]; then
	benchfile="${2:-BENCH_pr9.json}"
	echo "== ring-bench: snapshotting ring-VCO scaling curves to $benchfile"
	run_ring_sweep
	go run ./cmd/benchjson <"$ringout" >"$benchfile"
	cat "$benchfile"
	go run ./cmd/benchjson -ring-gate <"$ringout"
	rm -f "$ringout"
fi

if [ "$tier" = ring-bench-check ]; then
	echo "== ring-bench-check: dense vs matrix-free crossover gate"
	run_ring_sweep
	go run ./cmd/benchjson -ring-gate <"$ringout"
	rm -f "$ringout"
fi

echo "ci: ok"
