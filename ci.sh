#!/bin/sh
# Repository check tiers, in increasing cost:
#
#   tier 1  build + full test suite (the gate every change must pass)
#   tier 2  vet + race detector over the suite (-short skips the longest
#           solver runs; the parallel kernels all execute under the
#           race detector via the unit and determinism tests)
#
# Run ./ci.sh for everything, or ./ci.sh 1 / ./ci.sh 2 for one tier.
set -eu
cd "$(dirname "$0")"

tier="${1:-all}"

if [ "$tier" = 1 ] || [ "$tier" = all ]; then
	echo "== tier 1: build + tests"
	go build ./...
	go test ./...
fi

if [ "$tier" = 2 ] || [ "$tier" = all ]; then
	echo "== tier 2: vet + race detector"
	go vet ./...
	go test -race -short ./...
fi

echo "ci: ok"
