#!/bin/sh
# Repository check tiers, in increasing cost:
#
#   tier 1  build + full test suite (the gate every change must pass)
#   tier 2  vet + race detector over the suite (-short skips the longest
#           solver runs; the parallel kernels all execute under the
#           race detector via the unit and determinism tests)
#   bench   hot-loop benchmark snapshot: runs the envelope, quasiperiodic
#           and allocation-budget benchmarks with -benchmem and writes the
#           parsed numbers (ns/op, B/op, allocs/op) to BENCH_pr2.json via
#           cmd/benchjson. Not part of "all" — timings are machine-specific,
#           so refresh the baseline deliberately.
#
# Run ./ci.sh for everything, ./ci.sh 1 / ./ci.sh 2 for one tier, or
# ./ci.sh bench to refresh the benchmark baseline.
set -eu
cd "$(dirname "$0")"

tier="${1:-all}"

if [ "$tier" = 1 ] || [ "$tier" = all ]; then
	echo "== tier 1: build + tests"
	go build ./...
	go test ./...
fi

if [ "$tier" = 2 ] || [ "$tier" = all ]; then
	echo "== tier 2: vet + race detector"
	go vet ./...
	go test -race -short ./...
fi

if [ "$tier" = bench ]; then
	echo "== bench: snapshotting hot-loop benchmarks to BENCH_pr2.json"
	go test -run '^$' \
		-bench 'BenchmarkFig07VCOEnvelopeVacuum$|BenchmarkAblationChordNewton$|BenchmarkQuasiperiodicWaMPDE$|BenchmarkHotLoopAllocs$' \
		-benchmem -benchtime 3x . | go run ./cmd/benchjson >BENCH_pr2.json
	cat BENCH_pr2.json
fi

echo "ci: ok"
