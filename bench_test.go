package wampde_test

// Benchmarks regenerating the cost side of every figure in the paper's
// evaluation, plus ablations over the design choices DESIGN.md calls out
// (t2 integrator, N1 resolution, phase condition, linear solver). Run:
//
//	go test -bench=. -benchmem
//
// The solver hot paths run on the internal/par worker pool, so benchmarks
// are GOMAXPROCS-sensitive; compare serial and parallel throughput with
//
//	go test -bench=. -cpu 1,4
//
// (the pool sizes itself from GOMAXPROCS unless WAMPDE_WORKERS or
// BenchmarkParSpeedup's explicit override pins it). Figure-accuracy numbers
// (frequency ranges, phase errors) are produced by the cmd/ harnesses and
// recorded in EXPERIMENTS.md; the benchmarks measure the work each method
// performs.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	wampde "repro"
	"repro/internal/core"
	"repro/internal/dae"
	"repro/internal/hb"
	"repro/internal/mpde"
	"repro/internal/par"
	"repro/internal/shooting"
	"repro/internal/transient"
	"repro/internal/warp"
)

// ---------------------------------------------------------------- §3 figures

func BenchmarkFig01UnivariateSampling(b *testing.B) {
	am := warp.AMSignal{T1: 0.02, T2: 1}
	n := warp.UnivariateSampleCount(am.T1, am.T2, 15) // 750, as in the paper
	for i := 0; i < b.N; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += am.Eval(am.T2 * float64(j) / float64(n))
		}
		sinkF = s
	}
}

func BenchmarkFig02BivariateGrid(b *testing.B) {
	am := warp.AMSignal{T1: 0.02, T2: 1}
	for i := 0; i < b.N; i++ {
		g := warp.SampleGrid(am.Bivariate, 15, 15, am.T1, am.T2) // 225 samples
		sinkF = g.Val[7][7]
	}
}

func BenchmarkFig04FMSignal(b *testing.B) {
	fm := warp.FMSignal{F0: 1e6, F2: 20e3, K: 8 * math.Pi}
	for i := 0; i < b.N; i++ {
		s := 0.0
		for j := 0; j < 3000; j++ {
			s += fm.Eval(7e-5 * float64(j) / 3000)
		}
		sinkF = s
	}
}

func BenchmarkFig05UnwarpedRepresentation(b *testing.B) {
	fm := warp.FMSignal{F0: 1e6, F2: 20e3, K: 8 * math.Pi}
	for i := 0; i < b.N; i++ {
		sinkF = warp.RepresentationError(fm.Unwarped, 15, 15, 1/fm.F0, 1/fm.F2)
	}
}

func BenchmarkFig06WarpedRepresentation(b *testing.B) {
	fm := warp.FMSignal{F0: 1e6, F2: 20e3, K: 8 * math.Pi}
	for i := 0; i < b.N; i++ {
		sinkF = warp.RepresentationError(fm.Warped, 15, 15, 1, 1/fm.F2)
	}
}

// ---------------------------------------------------------------- §5 figures

var sinkF float64

// vcoICEntry caches one configuration's unforced-PSS initial condition.
// Each entry computes exactly once (sync.Once), even when -cpu 1,4 reruns
// the benchmark functions or benchmarks run concurrently; errors are stored
// so every caller can report them rather than failing under the Once.
type vcoICEntry struct {
	once sync.Once
	ic   []float64
	w0   float64
	err  error
}

var vcoICCache sync.Map // key [2]int{air(0/1), N1} -> *vcoICEntry

// prepVCOIC computes (and caches) the unforced-PSS initial condition for a
// configuration.
func prepVCOIC(b *testing.B, air bool, n1 int) ([]float64, float64) {
	b.Helper()
	airKey := 0
	if air {
		airKey = 1
	}
	v, _ := vcoICCache.LoadOrStore([2]int{airKey, n1}, &vcoICEntry{})
	e := v.(*vcoICEntry)
	e.once.Do(func() {
		vco, err := wampde.NewPaperVCO(air)
		if err != nil {
			e.err = err
			return
		}
		u0 := vco.StaticDisplacement(vco.Params.VCtl(0))
		e.ic, e.w0, e.err = core.InitialCondition(vco, []float64{0.5, 0, u0, 0}, 1/wampde.VCONominalFreq, core.ICOptions{N1: n1})
	})
	if e.err != nil {
		b.Fatal(e.err)
	}
	return e.ic, e.w0
}

func benchEnvelope(b *testing.B, air bool, t2End float64, steps int, opt core.EnvelopeOptions) {
	if opt.N1 == 0 {
		opt.N1 = 25
	}
	ic, w0 := prepVCOIC(b, air, opt.N1)
	vco, err := wampde.NewPaperVCO(air)
	if err != nil {
		b.Fatal(err)
	}
	opt.H2 = t2End / float64(steps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Envelope(vco, ic, w0, t2End, opt)
		if err != nil {
			b.Fatal(err)
		}
		sinkF = res.Omega[len(res.Omega)-1]
	}
}

func benchVCOTransient(b *testing.B, air bool, t2End, ptsPerCycle float64) {
	ic, _ := prepVCOIC(b, air, 25)
	vco, err := wampde.NewPaperVCO(air)
	if err != nil {
		b.Fatal(err)
	}
	x0 := append([]float64(nil), ic[:4]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transient.Simulate(vco, x0, 0, t2End, transient.Options{
			Method: transient.Trap, H: 1 / (wampde.VCONominalFreq * ptsPerCycle),
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = res.X[len(res.X)-1][0]
	}
}

// Figure 7/8: vacuum VCO envelope over the 60 µs span.
func BenchmarkFig07VCOEnvelopeVacuum(b *testing.B) {
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{Trap: true})
}

// Figure 9: the transient comparison run (200 pts/cycle over 60 µs).
func BenchmarkFig09TransientVacuum(b *testing.B) {
	benchVCOTransient(b, false, 60e-6, 200)
}

// Figure 10/11: air-damped VCO envelope over the full 3 ms span.
func BenchmarkFig10VCOEnvelopeAir(b *testing.B) {
	benchEnvelope(b, true, 3e-3, 600, core.EnvelopeOptions{Trap: true})
}

// Figure 12: the coarse transient baselines whose phase error grows.
func BenchmarkFig12TransientAir50(b *testing.B) {
	benchVCOTransient(b, true, 3e-3, 50)
}

func BenchmarkFig12TransientAir100(b *testing.B) {
	benchVCOTransient(b, true, 3e-3, 100)
}

// Headline speedup: the WaMPDE (above, BenchmarkFig10VCOEnvelopeAir) versus
// the 1000-points-per-cycle transient the paper says is needed to match its
// accuracy. The ratio of these two benchmarks is the reproduction of the
// "two orders of magnitude" claim; see EXPERIMENTS.md for measured numbers.
func BenchmarkSpeedupTransientAir1000(b *testing.B) {
	benchVCOTransient(b, true, 3e-3, 1000)
}

// ParSpeedup pins the worker-pool size explicitly (overriding GOMAXPROCS
// and WAMPDE_WORKERS) and reruns a Fig-10-scale air-damped envelope at a
// finer warped-axis resolution, where the O((N1·n)³) dense factorizations
// give the pool real work. The workers=4/workers=1 time ratio is the
// parallel speedup; on a ≥4-core machine it should exceed 2×. Results are
// bitwise identical across worker counts (see TestEnvelopeWorkerDeterminism).
func BenchmarkParSpeedup(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := par.SetWorkers(w)
			defer par.SetWorkers(prev)
			benchEnvelope(b, true, 0.5e-3, 100, core.EnvelopeOptions{N1: 49, Trap: true})
		})
	}
}

// ------------------------------------------------------------------ ablations

// t2 integrator: BE needs no startup special-casing but is first order.
func BenchmarkAblationEnvelopeBE(b *testing.B) {
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{})
}

// Warped-axis resolution.
func BenchmarkAblationN1_17(b *testing.B) {
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{N1: 17, Trap: true})
}

func BenchmarkAblationN1_33(b *testing.B) {
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{N1: 33, Trap: true})
}

// Phase condition (eq. (20) spectral form vs the time-domain default).
func BenchmarkAblationPhaseSpectral(b *testing.B) {
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{Trap: true, Phase: core.PhaseSpectralImag})
}

// Linear solver: GMRES + block-Jacobi (the paper's iterative path) vs LU.
func BenchmarkAblationGMRES(b *testing.B) {
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{Trap: true, Linear: core.LinearGMRES})
}

// Chord-Newton cross-step factorization reuse vs the per-step default.
func BenchmarkAblationChordNewton(b *testing.B) {
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{Trap: true, ChordNewton: true})
}

// Krylov recycling (GCRO-DR deflation carried across chord-Newton GMRES
// solves) vs BenchmarkAblationGMRES; TestRecycleReducesMatvecs pins the
// matvec reduction, this measures the wall-clock side.
func BenchmarkAblationGMRESRecycle(b *testing.B) {
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{
		Trap: true, Linear: core.LinearGMRES, ChordNewton: true, RecycleKrylov: true,
	})
}

// ---------------------------------------------------------- allocation budget

// BenchmarkHotLoopAllocs measures the Fig. 7 envelope's allocation churn with
// the worker pool pinned to 1, so goroutine dispatch doesn't obscure the
// solver: what remains is per-run result storage plus whatever the per-step
// hot loop still allocates. With FFT plans, LU/Newton workspaces, and the
// Jacobian matrix persisting across steps, allocs/op is dominated by the
// accepted-step records; TestHotLoopAllocBudget locks the budget in. Run with
// -benchmem (ReportAllocs is set here so the counts always appear).
func BenchmarkHotLoopAllocs(b *testing.B) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	b.ReportAllocs()
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{Trap: true})
}

// BenchmarkGMRESAllocs is the iterative-path counterpart: the same Fig. 7
// envelope solved through the supervised linear ladder (GMRES + harmonic
// preconditioner, pooled Krylov workspaces). With the Arnoldi basis, Givens
// scratch and the ladder's LU rung all persisting across solves, the
// allocs/op count pins the pooling — a leak in any per-solve buffer shows up
// as a baseline regression in `ci.sh bench-check`.
func BenchmarkGMRESAllocs(b *testing.B) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	b.ReportAllocs()
	benchEnvelope(b, false, 60e-6, 400, core.EnvelopeOptions{Trap: true, Linear: core.LinearGMRES})
}

// ------------------------------------------------------- method baselines

func BenchmarkBaselineShootingVanDerPol(b *testing.B) {
	sys := &dae.VanDerPol{Mu: 1}
	for i := 0; i < b.N; i++ {
		pss, err := shooting.Autonomous(sys, []float64{2, 0}, 6.6,
			shooting.Options{Method: transient.Trap, PointsPerPeriod: 256})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = pss.T
	}
}

func BenchmarkBaselineHBVanDerPol(b *testing.B) {
	sys := &dae.VanDerPol{Mu: 1}
	N := 41
	guess := make([][]float64, N)
	for j := 0; j < N; j++ {
		tau := float64(j) / float64(N)
		guess[j] = []float64{2 * math.Cos(2*math.Pi*tau), -2 * math.Sin(2*math.Pi*tau)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := hb.Autonomous(sys, 6.6, guess, hb.Options{N: N, Damping: true, MaxIter: 200})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = sol.T
	}
}

func BenchmarkBaselineMPDEQuasiperiodic(b *testing.B) {
	t1p, t2p := 1e-4, 1e-2
	sys := &mpde.TwoTone{
		System: &dae.LinearRC{C: 1e-6, R: 1e3},
		Fast:   []func(float64) float64{func(t float64) float64 { return 1e-3 * math.Sin(2*math.Pi*t/t1p) }},
		Slow:   []func(float64) float64{func(t float64) float64 { return 1 + 0.5*math.Sin(2*math.Pi*t/t2p) }},
	}
	for i := 0; i < b.N; i++ {
		sol, err := mpde.Quasiperiodic(sys, t1p, t2p, nil, mpde.Options{N1: 15, N2: 15})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = sol.X[0][0][0]
	}
}

// Quasiperiodic WaMPDE (§4.1) on the compact test VCO.
func BenchmarkQuasiperiodicWaMPDE(b *testing.B) {
	T2 := 80.0
	sys := &dae.SimpleVCO{
		L: 1, C0: 1, G1: -0.2, G3: 0.2 / 3, TauM: 10, Gamma: 1,
		Ctl: func(t float64) float64 { return 1 + 0.5*math.Sin(2*math.Pi*t/T2) },
	}
	ic, w0, err := core.InitialCondition(sys, []float64{1, 0, 1}, 4.5, core.ICOptions{N1: 15})
	if err != nil {
		b.Fatal(err)
	}
	env, err := core.Envelope(sys, ic, w0, 3*T2, core.EnvelopeOptions{N1: 15, H2: T2 / 150, Trap: true})
	if err != nil {
		b.Fatal(err)
	}
	guess, err := core.GuessFromEnvelope(env, T2, 15, 15)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qp, err := core.Quasiperiodic(sys, T2, guess, core.QPOptions{N1: 15, N2: 15})
		if err != nil {
			b.Fatal(err)
		}
		sinkF = qp.OmegaMean()
	}
}
