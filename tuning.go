package wampde

import (
	"context"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sweep"
)

// TuningSweepConfig configures an offline warm-started tuning-curve sweep:
// for each DC control voltage, the free-running periodic steady state of the
// §5 VCO and its oscillation frequency. Points run in continuation order
// (ascending control voltage) and each point's shooting starts from its
// neighbor's orbit via the core.WarmStart carrier, skipping the settling
// transient — the offline counterpart of the serve tier's /v1/sweep, where
// bit-exactness against single solves matters more than reuse (DESIGN.md
// "Sweep jobs").
type TuningSweepConfig struct {
	// Air selects the air-damped configuration (Figures 10–12); false is the
	// vacuum circuit of Figures 7–9.
	Air bool

	// Values lists explicit control voltages, in any order (the planner
	// re-orders them for continuation). Mutually exclusive with the grid.
	Values []float64
	// From/To/Points describe a uniform control-voltage grid.
	From, To float64
	Points   int

	// N1 is the warped-axis sample count of each orbit (default 25).
	N1 int
	// SettleCycles bounds the cold-start settling transient (default 20);
	// warm-started points skip it entirely.
	SettleCycles int
	// Lanes is the number of concurrent continuation chains (default 1).
	// Each lane owns a contiguous voltage segment and threads its own
	// carrier, so determinism does not depend on lane count.
	Lanes int
	// Cold disables warm continuation: every point runs the full settle +
	// shoot preamble. The baseline TuningSweep's results are compared
	// against.
	Cold bool
	// Ctx, when non-nil, makes the sweep cancelable between and inside
	// points.
	Ctx context.Context
}

// TuningPoint is one solved point of the tuning curve.
type TuningPoint struct {
	VCtl  float64 // DC control voltage
	Index int     // position in the caller's Values list (grids: ascending)
	Freq  float64 // free-running oscillation frequency, Hz
	T     float64 // oscillation period, s
	U     float64 // static plate displacement at this control
	// Warm records how the point started: "warm" (orbit carried from the
	// neighbor), "cold" (full settle + shoot), or "fallback" (carried orbit
	// failed supervision; the cold path rescued the point).
	Warm   string
	WallNS int64
}

// TuningSweepResult is a completed tuning sweep in continuation order.
type TuningSweepResult struct {
	Points    []TuningPoint
	WarmUses  int // points that adopted a carried orbit
	Fallbacks int // carried orbits that failed supervision
	WallNS    int64
}

// TuningSweep computes the VCO's tuning curve f(Vctl) by warm-started
// continuation. Any point's hard failure aborts the sweep (unlike the
// streaming service there is no partial consumer to keep feeding).
func TuningSweep(cfg TuningSweepConfig) (*TuningSweepResult, error) {
	plan, err := tuningPlan(cfg)
	if err != nil {
		return nil, err
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n1 := cfg.N1
	if n1 <= 0 {
		n1 = 25
	}

	n := plan.N()
	pts := make([]TuningPoint, n)
	res := &TuningSweepResult{Points: make([]TuningPoint, 0, n)}

	solve := func(ctx context.Context, p sweep.Point, carry any) ([]byte, sweep.Meta, any, error) {
		t0 := time.Now()
		params := circuit.DefaultVCOParams()
		if cfg.Air {
			params = circuit.AirVCOParams()
		}
		// Freeze the control at the swept DC value: each point is an
		// unforced oscillator whose PSS is the tuning-curve sample.
		params.VCtl = circuit.DC(p.Value)
		vco, err := circuit.NewVCO(params)
		if err != nil {
			return nil, sweep.Meta{}, nil, err
		}

		opt := core.ICOptions{N1: n1, SettleCycles: cfg.SettleCycles}
		opt.Shooting.Ctx = ctx
		u0 := vco.StaticDisplacement(p.Value)
		ws, _ := carry.(*core.WarmStart)
		label := "cold"
		var uses, falls int
		if !cfg.Cold {
			if ws == nil {
				ws = &core.WarmStart{}
			}
			if ws.T > 0 && ws.Param != p.Value {
				// Rescale the carried period by the design-equation frequency
				// ratio between the donor and this control: the orbit shape
				// continues from the neighbor, but the period guess centers
				// on this point, saving shooting a Newton step or two.
				fPrev := vco.FreqAtDisplacement(vco.StaticDisplacement(ws.Param))
				ws.T *= fPrev / vco.FreqAtDisplacement(u0)
			}
			uses, falls = ws.Uses, ws.Fallbacks
			ws.Param, ws.Label = p.Value, ""
			opt.Warm = ws
		}

		// Seed the cold path with the design-equation estimate of the local
		// frequency (f ≈ 1/(2π√(L·C(u₀)))): at the edges of the tuning range
		// the nominal 0.75 MHz guess is far enough off that cold shooting
		// diverges, exactly the fragility the warm carrier removes.
		tGuess := 1 / vco.FreqAtDisplacement(u0)
		_, omega0, err := core.InitialCondition(vco, []float64{0.5, 0, u0, 0}, tGuess, opt)
		if err != nil {
			return nil, sweep.Meta{}, nil, fmt.Errorf("vctl %g: %w", p.Value, err)
		}
		if opt.Warm != nil {
			switch {
			case opt.Warm.Fallbacks > falls:
				label = "fallback"
			case opt.Warm.Uses > uses:
				label = "warm"
			}
		}
		pts[p.Seq] = TuningPoint{
			VCtl:   p.Value,
			Index:  p.Index,
			Freq:   omega0,
			T:      1 / omega0,
			U:      u0,
			Warm:   label,
			WallNS: time.Since(t0).Nanoseconds(),
		}
		return nil, sweep.Meta{Warm: label, NS: pts[p.Seq].WallNS}, ws, nil
	}

	emit := func(r *sweep.Result) error {
		if r.Err != nil {
			return r.Err
		}
		res.Points = append(res.Points, pts[r.Seq])
		return nil
	}

	t0 := time.Now()
	err = sweep.Run(ctx, plan, solve, emit, func(fn func(context.Context)) error {
		go fn(ctx)
		return nil
	}, sweep.Options{Lanes: cfg.Lanes})
	if err != nil {
		return nil, err
	}
	res.WallNS = time.Since(t0).Nanoseconds()
	for _, p := range res.Points {
		switch p.Warm {
		case "warm":
			res.WarmUses++
		case "fallback":
			res.Fallbacks++
		}
	}
	return res, nil
}

func tuningPlan(cfg TuningSweepConfig) (*sweep.Plan, error) {
	hasGrid := cfg.Points != 0 || cfg.From != 0 || cfg.To != 0
	switch {
	case hasGrid && len(cfg.Values) > 0:
		return nil, fmt.Errorf("wampde: tuning sweep takes a grid or values, not both")
	case hasGrid:
		return sweep.Grid(cfg.From, cfg.To, cfg.Points)
	case len(cfg.Values) > 0:
		return sweep.Values(cfg.Values)
	default:
		return nil, fmt.Errorf("wampde: tuning sweep needs from/to/points or values")
	}
}
