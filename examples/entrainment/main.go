// Example entrainment demonstrates the §4.1 special cases of the WaMPDE
// classification — mode locking (entrainment, ω0 = ω2) and period
// multiplication (ω0 = ω2/m) — on an injected van der Pol oscillator.
//
// Inside the lock range a stable T_inj-periodic orbit exists: forced
// shooting converges and all Floquet multipliers lie inside the unit
// circle. Outside the lock range the periodic orbit loses stability (a
// multiplier crosses the unit circle) and the response is quasiperiodic.
// With forcing near twice the natural frequency, the oscillator locks
// subharmonically: the response period is twice the forcing period —
// "period multiplication ... often designed for (e.g., in frequency
// dividing circuits)" (§4.1).
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	wampde "repro"
)

func main() {
	const mu = 1.0
	free := &wampde.VanDerPol{Mu: mu}
	pss, err := wampde.AutonomousPSS(free, []float64{2, 0}, 6.6, wampde.ShootingOptions{Method: wampde.Trap})
	if err != nil {
		log.Fatal(err)
	}
	f0 := 1 / pss.T
	fmt.Printf("free-running van der Pol (μ=%.1f): f0 = %.5f\n", mu, f0)

	fmt.Println("\n--- fundamental mode locking (ω0 = ω2), injection amplitude 0.5 ---")
	fmt.Println("f_inj/f0   |Floquet|max(≠1 dir)   verdict")
	for _, ratio := range []float64{0.85, 0.92, 0.97, 1.00, 1.03, 1.08, 1.15} {
		fInj := ratio * f0
		verdict, lead := lockVerdict(mu, 0.5, fInj, 1, pss)
		fmt.Printf("  %.2f        %-18s  %s\n", ratio, lead, verdict)
	}

	fmt.Println("\n--- period multiplication (ω0 = ω2/2): forcing at 2·f0 ---")
	fInj := 2.00 * f0
	sys := &wampde.VanDerPol{Mu: mu, Force: func(t float64) float64 { return 1.5 * math.Sin(2*math.Pi*fInj*t) }}
	orbit, err := wampde.ShootingPSS(sys, append([]float64(nil), pss.X0...), 2/fInj,
		wampde.ShootingOptions{Method: wampde.Trap, PointsPerPeriod: 1024})
	if err != nil {
		log.Fatal(err)
	}
	mult, err := orbit.Floquet()
	if err != nil {
		log.Fatal(err)
	}
	maxMult := 0.0
	for _, m := range mult {
		if a := cmplx.Abs(m); a > maxMult {
			maxMult = a
		}
	}
	// Genuine period doubling: the state after ONE forcing period differs.
	halfDiff := 0.0
	for i := 0; i < 2; i++ {
		d := orbit.Orbit.At(1/fInj, i) - orbit.X0[i]
		halfDiff += d * d
	}
	fmt.Printf("period-2·T_inj orbit: stable (|Floquet|max = %.3f), |x(T_inj)−x(0)| = %.2f ≠ 0\n",
		maxMult, math.Sqrt(halfDiff))

	// The response's fundamental sits at f_inj/2: a frequency divider. Run
	// several periods of the locked orbit and count cycles.
	long, err := wampde.RunTransient(sys, orbit.X0, 0, 12/fInj,
		wampde.TransientOptions{Method: wampde.Trap, H: 1 / (fInj * 400)})
	if err != nil {
		log.Fatal(err)
	}
	inst := wampde.InstFrequency(long.T, long.Component(0))
	mean := 0.0
	for _, v := range inst.Y {
		mean += v
	}
	mean /= float64(len(inst.Y))
	fmt.Printf("measured response fundamental: %.5f = %.3f·f_inj (frequency divider, ω0 = ω2/2 ✓)\n",
		mean, mean/fInj)
}

// lockVerdict looks for a (harmonic·T_inj)-periodic orbit by shooting and
// classifies its stability via Floquet multipliers.
func lockVerdict(mu, amp, fInj float64, harmonic int, freeRun *wampde.PSS) (string, string) {
	sys := &wampde.VanDerPol{Mu: mu, Force: func(t float64) float64 { return amp * math.Sin(2*math.Pi*fInj*t) }}
	period := float64(harmonic) / fInj
	// Start from the free-running orbit state (a point on the cycle).
	x0 := append([]float64(nil), freeRun.X0...)
	pss, err := wampde.ShootingPSS(sys, x0, period, wampde.ShootingOptions{
		Method: wampde.Trap, PointsPerPeriod: 512, MaxIter: 60,
	})
	if err != nil {
		return "no periodic orbit found (unlocked/quasiperiodic)", "-"
	}
	mult, err := pss.Floquet()
	if err != nil {
		return "multiplier computation failed", "-"
	}
	// For a forced (non-autonomous) orbit all multipliers matter.
	max := 0.0
	for _, m := range mult {
		if a := cmplx.Abs(m); a > max {
			max = a
		}
	}
	lead := fmt.Sprintf("%.3f", max)
	// Degenerate lock: shooting can converge onto a tiny near-equilibrium
	// orbit; require a real oscillation amplitude.
	peak := 0.0
	for _, xs := range pss.Orbit.X {
		if a := math.Abs(xs[0]); a > peak {
			peak = a
		}
	}
	if peak < 0.5 {
		return "no oscillatory orbit", lead
	}
	if max <= 1.001 {
		return "LOCKED (stable periodic orbit)", lead
	}
	return "unstable periodic orbit (outside lock range)", lead
}
