// Example mixer demonstrates the unwarped MPDE baseline (§2–§3) on the
// classic AM problem: a diode envelope detector driven by a 100 kHz carrier
// amplitude-modulated at 100 Hz. The two rates are separated by a factor of
// 1000, so direct transient simulation needs ~10⁵ points per modulation
// period, while the MPDE captures the full quasiperiodic steady state on a
// small N1×N2 grid — the Figures 1–3 economics on a real nonlinear circuit.
package main

import (
	"fmt"
	"log"
	"math"

	wampde "repro"
)

func main() {
	const (
		fCarrier = 100e3
		fMod     = 100.0
		t1p      = 1 / fCarrier
		t2p      = 1 / fMod
	)

	// Envelope detector: source -> diode -> RC load.
	ckt := wampde.NewCircuit()
	var err error
	add := func(e error) {
		if err == nil {
			err = e
		}
	}
	c, e := wampde.ParseNetlist(`
* AM envelope detector
I1 in 0 DC(0)        ; waveform supplied via the two-tone adapter
Rin in 0 10k
D1 in out
RL out 0 100k
CL out 0 2n
`)
	add(e)
	if err != nil {
		log.Fatal(err)
	}
	ckt = c
	sys, err := ckt.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The bivariate input: carrier along t1, modulation along t2.
	tt := &wampde.TwoTone{
		System: sys,
		Fast:   []func(float64) float64{func(t float64) float64 { return 2e-4 * math.Sin(2*math.Pi*t/t1p) }},
		Slow:   []func(float64) float64{func(t float64) float64 { return 1 + 0.8*math.Sin(2*math.Pi*t/t2p) }},
	}

	sol, err := wampde.RunMPDE(tt, t1p, t2p, wampde.MPDEOptions{N1: 25, N2: 15, Damping: true, MaxIter: 200})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.NodeIndex("out")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MPDE grid: %d×%d = %d samples", sol.N1(), sol.N2(), sol.N1()*sol.N2())
	fmt.Printf(" (vs ≈%.0f transient samples per modulation period at 15 pts/carrier cycle)\n\n",
		15*t2p/t1p)

	fmt.Println("detector output (t1-averaged) across one modulation period:")
	fmt.Println(" t2/T2    v_out    envelope shape")
	for j2 := 0; j2 < sol.N2(); j2++ {
		mean := 0.0
		for j1 := 0; j1 < sol.N1(); j1++ {
			mean += sol.X[j2][j1][out]
		}
		mean /= float64(sol.N1())
		fmt.Printf("  %.2f    %6.4f   %s\n", float64(j2)/float64(sol.N2()), mean, bar(mean, 2.0))
	}

	// Reconstruct the univariate waveform at an arbitrary instant, eq. of §3.
	t := 3.14159e-3
	fmt.Printf("\nunivariate reconstruction: v_out(%.5g s) = %.5f V\n", t, sol.Univariate(out, t))
}

func bar(v, scale float64) string {
	n := int(v / scale * 40)
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
