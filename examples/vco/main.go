// Example vco runs the paper's §5 MEMS-varactor VCO end to end through the
// public API: builds the circuit with MNA devices, computes the WaMPDE
// initial condition, envelope-follows the forced oscillator, and compares
// the reconstructed waveform against brute-force transient simulation —
// the Figures 7–9 experiment as library code.
package main

import (
	"fmt"
	"log"

	wampde "repro"
)

func main() {
	// The paper's circuit: LC tank ∥ cubic negative-resistance conductor ∥
	// electrostatically actuated MEMS varactor, vacuum cavity, control
	// sinusoid with a period 30× the nominal 0.75 MHz cycle.
	run, err := wampde.RunPaperVCO(wampde.VCORunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial local frequency: %.3f MHz (paper: ≈0.75 MHz)\n", run.Omega0/1e6)
	min, max := run.FrequencyRange()
	fmt.Printf("frequency modulation:   %.2f – %.2f MHz (factor %.2f; paper: ≈3)\n",
		min/1e6, max/1e6, max/min)
	fmt.Printf("WaMPDE cost:            %d time points, %v\n", run.TimePointCount(), run.WallTime)

	// Validate against direct transient simulation from the same state.
	tr, err := run.RunTransientBaseline(200, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transient baseline:     %d steps, %v\n", tr.Steps, tr.WallTime)
	fmt.Printf("waveform RMS diff:      %.3f V (amplitude ≈ 2 V)\n",
		run.WaveformRMSVs(tr, run.Config.T2End))
	fmt.Printf("phase error at 55 µs:   %.4f cycles\n", run.PhaseErrorVs(tr, 55e-6))

	// The bivariate surface (Figure 8): amplitude varies with the control.
	grid := run.BivariateGrid(24)
	fmt.Println("\nbivariate capacitor voltage (rows: t2, one oscillation cycle per row):")
	for k := 0; k < len(grid); k += 4 {
		fmt.Print("  ")
		for _, v := range grid[k] {
			fmt.Print(mark(v))
		}
		fmt.Println()
	}
}

func mark(v float64) string {
	switch {
	case v > 1.2:
		return "#"
	case v > 0.4:
		return "+"
	case v > -0.4:
		return "."
	case v > -1.2:
		return "-"
	default:
		return "="
	}
}
