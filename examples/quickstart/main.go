// Quickstart: simulate a frequency-modulated oscillator with the WaMPDE in
// a few lines. A compact VCO model (LC tank + negative resistance + a
// control-driven tunable capacitor) is swept by a slow sinusoidal control;
// the WaMPDE returns the local frequency ω(t2) explicitly — no
// zero-crossing post-processing of megasamples required.
package main

import (
	"fmt"
	"log"
	"math"

	wampde "repro"
)

func main() {
	// A normalized VCO: f ≈ 0.16·sqrt(1+u) "Hz", with the actuator state u
	// tracking Gamma·Vc(t)². The control sweeps slowly (period 300 ≈ 50
	// oscillation cycles).
	const controlPeriod = 300.0
	sys := &wampde.SimpleVCO{
		L: 1, C0: 1,
		G1: -0.2, G3: 0.2 / 3, // limit cycle amplitude ≈ 2
		TauM: 10, Gamma: 1,
		Ctl: func(t float64) float64 { return 1 + 0.5*math.Sin(2*math.Pi*t/controlPeriod) },
	}

	// 1. The WaMPDE's natural initial condition: the unforced oscillator's
	//    periodic steady state (computed by autonomous shooting).
	ic, omega0, err := wampde.OscillatorIC(sys, []float64{1, 0, 1}, 4.5, wampde.ICOptions{N1: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unforced oscillator: f = %.4f (design: %.4f)\n", omega0, sys.FreqAt(1))

	// 2. Envelope-follow the WaMPDE over one control period.
	res, err := wampde.RunEnvelope(sys, ic, omega0, controlPeriod, wampde.EnvelopeOptions{
		N1: 25, H2: controlPeriod / 300, Trap: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The local frequency is an explicit output (the paper's Figure 7).
	fmt.Println("\n t2      local frequency")
	for k := 0; k < len(res.T2); k += 30 {
		bar := int((res.Omega[k] - 0.1) * 200)
		fmt.Printf("%6.1f  %.4f %s\n", res.T2[k], res.Omega[k], stars(bar))
	}

	// 4. The one-dimensional waveform is recoverable anywhere, eq. (15).
	fmt.Printf("\nx(t=123.456) = %.6f\n", res.At(0, 123.456))
	fmt.Printf("oscillation phase at t=%v: %.2f cycles\n", controlPeriod, res.UnwrappedPhase(controlPeriod))
}

func stars(n int) string {
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
