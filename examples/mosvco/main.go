// Example mosvco runs the WaMPDE on a structurally different oscillator
// from the paper's: a cross-coupled NMOS LC VCO with MEMS varactors on both
// tank sides and an ideal supply — 11 states and a true DAE (the supply
// node carries no charge). Nothing in the WaMPDE solver is specific to the
// paper's 4-state circuit; this example is the proof.
package main

import (
	"fmt"
	"log"
	"math"

	wampde "repro"
	"repro/internal/circuit"
	"repro/internal/core"
)

func main() {
	const (
		vdd       = 2.5
		l         = 10e-6
		c0        = 1e-9
		kp        = 2e-3
		vt        = 0.7
		ctlPeriod = 40e-6
	)
	ctl := circuit.Sine(1.5, 1.0, 1/ctlPeriod, 0)

	// MEMS plate: 500 kHz resonance, lightly damped, comb-drive-like force.
	k := 1.0
	m := k / math.Pow(2*math.Pi*500e3, 2)
	b := 2 * 0.1 * math.Sqrt(k*m)

	ckt := circuit.New()
	ckt.MustAdd(circuit.NewVSource("VDD", "vdd", circuit.Ground, circuit.DC(vdd)))
	ckt.MustAdd(circuit.NewInductor("L1", "vdd", "a", l, 2))
	ckt.MustAdd(circuit.NewInductor("L2", "vdd", "b", l, 2))
	ckt.MustAdd(circuit.NewMEMSVaractor("CV1", "a", circuit.Ground, c0, 1, m, b, k, 0.382, ctl))
	ckt.MustAdd(circuit.NewMEMSVaractor("CV2", "b", circuit.Ground, c0, 1, m, b, k, 0.382, ctl))
	ckt.MustAdd(circuit.NewNMOS("M1", "a", "b", "tail", kp, vt, 0.01))
	ckt.MustAdd(circuit.NewNMOS("M2", "b", "a", "tail", kp, vt, 0.01))
	ckt.MustAdd(circuit.NewISource("IT", circuit.Ground, "tail", circuit.DC(2e-3)))
	ckt.MustAdd(circuit.NewResistor("Rt", "tail", circuit.Ground, 1e6))
	ckt.SetOscVar("a")
	sys, err := ckt.Build()
	if err != nil {
		log.Fatal(err)
	}
	ia, _ := sys.NodeIndex("a")
	fmt.Printf("cross-coupled MOS VCO: %d states (%d nodes + branches + 2×2 MEMS)\n",
		sys.Dim(), sys.NumNodes())

	// Seed, initial condition, envelope.
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*c0))
	x0 := make([]float64, sys.Dim())
	if err := wampde.DCOperatingPoint(sys, 0, x0); err != nil {
		log.Fatal(err)
	}
	x0[ia] += 0.1
	fGuess := f0 * math.Sqrt(1+0.382*1.5*1.5)
	ic, w0, err := core.InitialCondition(sys, x0, 1/fGuess, core.ICOptions{N1: 21, SettleCycles: 60})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unforced oscillation: %.3f MHz (design %.3f MHz)\n", w0/1e6, fGuess/1e6)

	res, err := core.Envelope(sys, ic, w0, ctlPeriod, core.EnvelopeOptions{
		N1: 21, H2: ctlPeriod / 300, Trap: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n t2 (µs)   ω (MHz)   design f0·sqrt(1+0.382·Vc²)")
	for kk := 0; kk < len(res.T2); kk += 30 {
		tv := res.T2[kk]
		vc := ctl(tv)
		fmt.Printf("  %5.1f    %6.3f    %6.3f\n", tv*1e6, res.Omega[kk]/1e6,
			f0*math.Sqrt(1+0.382*vc*vc)/1e6)
	}
}
