package wampde_test

// Generality test: the WaMPDE envelope on a second, structurally different
// VCO — the classic cross-coupled NMOS LC oscillator with MEMS varactors on
// both tank sides (11 states: 4 nodes, 3 branch currents, 2×2 mechanical
// coordinates). Nothing in internal/core is specific to the paper's 4-state
// circuit; this test keeps it that way.

import (
	"math"
	"testing"

	wampde "repro"
	"repro/internal/circuit"
	"repro/internal/core"
)

func buildMOSVCO(t *testing.T, ctl circuit.Waveform) (*circuit.System, int) {
	t.Helper()
	const (
		vdd = 2.5
		l   = 10e-6
		c0  = 1e-9
		kp  = 2e-3
		vt  = 0.7
	)
	k := 1.0
	m := k / math.Pow(2*math.Pi*500e3, 2)
	b := 2 * 0.1 * math.Sqrt(k*m)
	ckt := circuit.New()
	ckt.MustAdd(circuit.NewVSource("VDD", "vdd", circuit.Ground, circuit.DC(vdd)))
	ckt.MustAdd(circuit.NewInductor("L1", "vdd", "a", l, 2))
	ckt.MustAdd(circuit.NewInductor("L2", "vdd", "b", l, 2))
	ckt.MustAdd(circuit.NewMEMSVaractor("CV1", "a", circuit.Ground, c0, 1, m, b, k, 0.382, ctl))
	ckt.MustAdd(circuit.NewMEMSVaractor("CV2", "b", circuit.Ground, c0, 1, m, b, k, 0.382, ctl))
	ckt.MustAdd(circuit.NewNMOS("M1", "a", "b", "tail", kp, vt, 0.01))
	ckt.MustAdd(circuit.NewNMOS("M2", "b", "a", "tail", kp, vt, 0.01))
	ckt.MustAdd(circuit.NewISource("IT", circuit.Ground, "tail", circuit.DC(2e-3)))
	ckt.MustAdd(circuit.NewResistor("Rt", "tail", circuit.Ground, 1e6))
	ckt.SetOscVar("a")
	sys, err := ckt.Build()
	if err != nil {
		t.Fatal(err)
	}
	ia, err := sys.NodeIndex("a")
	if err != nil {
		t.Fatal(err)
	}
	return sys, ia
}

func TestWaMPDEOnCrossCoupledMOSVCO(t *testing.T) {
	if testing.Short() {
		t.Skip("11-state envelope run")
	}
	const ctlPeriod = 40e-6
	ctl := circuit.Sine(1.5, 1.0, 1/ctlPeriod, 0)
	sys, ia := buildMOSVCO(t, ctl)

	// Design law: f(u) = f0·sqrt(1+u) with u_eq = 0.382·Vc², f0 from L and
	// the per-side rest capacitance (differential mode sees the same LC).
	f0 := 1 / (2 * math.Pi * math.Sqrt(10e-6*1e-9))
	uEq := func(vc float64) float64 { return 0.382 * vc * vc }
	fDesign := func(vc float64) float64 { return f0 * math.Sqrt(1+uEq(vc)) }

	// Kicked DC state as the settling seed.
	x0 := make([]float64, sys.Dim())
	if err := wampde.DCOperatingPoint(sys, 0, x0); err != nil {
		t.Fatal(err)
	}
	x0[ia] += 0.1
	ic, w0, err := core.InitialCondition(sys, x0, 1/fDesign(1.5), core.ICOptions{N1: 21, SettleCycles: 60})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w0-fDesign(1.5)) > 0.08*fDesign(1.5) {
		t.Fatalf("MOS VCO initial frequency %v, design %v", w0, fDesign(1.5))
	}

	res, err := core.Envelope(sys, ic, w0, ctlPeriod, core.EnvelopeOptions{
		N1: 21, H2: ctlPeriod / 300, Trap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The local frequency must track the design law across the sweep.
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		tv := frac * ctlPeriod
		want := fDesign(ctl(tv))
		got := res.OmegaAt(tv)
		if math.Abs(got-want) > 0.05*want {
			t.Fatalf("ω(%.2f·T) = %v, design %v", frac, got, want)
		}
	}
	// And it must actually modulate.
	min, max := math.Inf(1), 0.0
	for _, w := range res.Omega {
		min = math.Min(min, w)
		max = math.Max(max, w)
	}
	if max/min < 1.2 {
		t.Fatalf("MOS VCO modulation too small: %v", max/min)
	}
}
