package wampde_test

// BenchmarkRingScaling pins the scaling claim behind the matrix-free spectral
// WaMPDE operator: envelope-following on the generated N-stage ring VCO, dense
// bordered Jacobian versus core.LinearMatrixFree, as the circuit grows. Each
// step's bordered system has N1·(3·stages)+1 unknowns, so the dense path's
// O(total³) factorizations fall behind the matrix-free path's O(total·log N1)
// matvecs as stages grows; `ci.sh ring-bench` snapshots the curve into
// BENCH_pr7.json and `ci.sh ring-bench-check` gates that matrix-free wins
// from 15 stages up (see cmd/benchjson -ring-gate).
//
// The envelope starts from the true limit cycle: the standard settle+shoot
// preamble (core.InitialCondition), seeded with the analytic dominant-mode
// wave the generator designs for (see internal/netlist/generate.go) and
// cached per stage count, runs outside the timer, so both modes solve the
// identical sequence of envelope steps and only the step linear algebra is
// measured.

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
)

// ringBenchStages is the scaling sweep. It stops at 31 stages (32·93+1 =
// 2977 unknowns, 2× past the serving layer's matrix-free cutover): the bound
// is the shared settle+shoot preamble, not the envelope under test —
// autonomous shooting builds its monodromy by central finite differences
// (2n transits per Newton iteration), which at 63 stages (189 states) burns
// more than half an hour on one core before a single op is measured, for
// either mode. A large-N preamble that scales (iterative/adjoint monodromy,
// or warm continuation across stage counts) is ROADMAP work; the generators
// themselves go to 63.
var ringBenchStages = []int{3, 7, 15, 31}

func ringBenchSystem(b *testing.B, stages int) *circuit.System {
	b.Helper()
	src, err := netlist.RingVCO(stages, 0) // default slow control sweep
	if err != nil {
		b.Fatal(err)
	}
	ckt, err := netlist.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := ckt.Build()
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// ringStageIndex parses the stage number out of a ring state name
// ("v(s12)" → 12).
func ringStageIndex(name string) (int, bool) {
	inner := strings.TrimSuffix(strings.TrimPrefix(name, "v("), ")")
	if len(inner) < 2 {
		return 0, false
	}
	j := 0
	for _, r := range inner[1:] {
		if r < '0' || r > '9' {
			return 0, false
		}
		j = 10*j + int(r-'0')
	}
	return j, true
}

// ringWaveGuess is the analytic dominant-mode state at t = 0: stage k at
// cos(−2π·k·k̂/N) with k̂ = (N−1)/2 (the traveling-wave mode the generator's
// gain margin selects, amplitude 1 by the cubic's describing function), MEMS
// displacements at their electrostatic equilibrium. It seeds the settling
// transient inside core.InitialCondition.
func ringWaveGuess(sys *circuit.System, stages int) []float64 {
	khat := float64(stages-1) / 2
	uEq := 0.382 * netlist.VctlDefault * netlist.VctlDefault
	x := make([]float64, sys.Dim())
	for i := range x {
		name := sys.StateName(i)
		switch {
		case strings.HasSuffix(name, "#0"):
			x[i] = uEq
		case strings.HasSuffix(name, "#1"):
			x[i] = 0
		default:
			if k, ok := ringStageIndex(name); ok {
				x[i] = math.Cos(-2 * math.Pi * float64(k) * khat / float64(stages))
			}
		}
	}
	return x
}

// ringICCache memoizes the settle+shoot initial condition per stage count,
// exactly like vcoICCache does for the paper VCO, so -cpu reruns and the
// dense/matfree pair share one preamble.
var ringICCache sync.Map // stages -> *vcoICEntry

func prepRingIC(b *testing.B, sys *circuit.System, stages, n1 int) ([]float64, float64) {
	b.Helper()
	v, _ := ringICCache.LoadOrStore(stages, &vcoICEntry{})
	e := v.(*vcoICEntry)
	e.once.Do(func() {
		fNom := netlist.RingVCONominalFreq(stages, netlist.VctlDefault)
		e.ic, e.w0, e.err = core.InitialCondition(sys, ringWaveGuess(sys, stages), 1/fNom,
			core.ICOptions{N1: n1})
	})
	if e.err != nil {
		b.Fatal(e.err)
	}
	return e.ic, e.w0
}

func BenchmarkRingScaling(b *testing.B) {
	// Power-of-two collocation: at N1=25 every spectral matvec pays the
	// Bluestein chirp path (three padded 64-point FFTs per transform), which
	// dominates the matrix-free profile; N1=32 keeps the differentiation on
	// the radix-2 path — the configuration anyone scaling N1 up would pick.
	const n1 = 32
	for _, stages := range ringBenchStages {
		for _, mode := range []string{"dense", "matfree"} {
			b.Run(fmt.Sprintf("stages=%d/%s", stages, mode), func(b *testing.B) {
				sys := ringBenchSystem(b, stages)
				fNom := netlist.RingVCONominalFreq(stages, netlist.VctlDefault)
				xhat0, w0 := prepRingIC(b, sys, stages, n1)
				h2 := 20 / fNom
				opt := core.EnvelopeOptions{
					N1: n1, H2: h2, Trap: true, ChordNewton: true,
				}
				if mode == "matfree" {
					opt.Linear = core.LinearMatrixFree
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Envelope(sys, xhat0, w0, 3*h2, opt)
					if err != nil {
						b.Fatal(err)
					}
					sinkF = res.Omega[len(res.Omega)-1]
				}
			})
		}
	}
}
