package wampde_test

// BenchmarkRingScaling pins the scaling claim behind the matrix-free spectral
// WaMPDE operator: envelope-following on the generated N-stage ring VCO, dense
// bordered Jacobian versus core.LinearMatrixFree, as the circuit grows. Each
// step's bordered system has N1·(3·stages)+1 unknowns, so the dense path's
// O(total³) factorizations fall behind the matrix-free path's O(total·log N1)
// matvecs as stages grows. BenchmarkQPRingScaling makes the same comparison
// for the quasiperiodic solver, whose dense Jacobian couples the whole
// N1×N2 bivariate grid at once and hits the cubic wall much sooner.
// `ci.sh ring-bench` snapshots both curves into BENCH_pr9.json and
// `ci.sh ring-bench-check` gates that matrix-free wins from 15 stages up in
// each family (see cmd/benchjson -ring-gate).
//
// The envelope starts from the true limit cycle: the standard settle+shoot
// preamble (core.InitialCondition), seeded with the analytic dominant-mode
// wave the generator designs for (see internal/netlist/generate.go) and
// cached per stage count, runs outside the timer, so both modes solve the
// identical sequence of envelope steps and only the step linear algebra is
// measured.

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netlist"
)

// ringBenchStages is the scaling sweep. It stops at 31 stages (32·93+1 =
// 2977 unknowns, 2× past the serving layer's matrix-free cutover): the bound
// is the shared settle+shoot preamble, not the envelope under test —
// autonomous shooting builds its monodromy by central finite differences
// (2n transits per Newton iteration), which at 63 stages (189 states) burns
// more than half an hour on one core before a single op is measured, for
// either mode. A large-N preamble that scales (iterative/adjoint monodromy,
// or warm continuation across stage counts) is ROADMAP work; the generators
// themselves go to 63.
var ringBenchStages = []int{3, 7, 15, 31}

func ringBenchSystem(b *testing.B, stages int) *circuit.System {
	b.Helper()
	src, err := netlist.RingVCO(stages, 0) // default slow control sweep
	if err != nil {
		b.Fatal(err)
	}
	ckt, err := netlist.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := ckt.Build()
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// ringStageIndex parses the stage number out of a ring state name
// ("v(s12)" → 12).
func ringStageIndex(name string) (int, bool) {
	inner := strings.TrimSuffix(strings.TrimPrefix(name, "v("), ")")
	if len(inner) < 2 {
		return 0, false
	}
	j := 0
	for _, r := range inner[1:] {
		if r < '0' || r > '9' {
			return 0, false
		}
		j = 10*j + int(r-'0')
	}
	return j, true
}

// ringWaveGuess is the analytic dominant-mode state at t = 0: stage k at
// cos(−2π·k·k̂/N) with k̂ = (N−1)/2 (the traveling-wave mode the generator's
// gain margin selects, amplitude 1 by the cubic's describing function), MEMS
// displacements at their electrostatic equilibrium. It seeds the settling
// transient inside core.InitialCondition.
func ringWaveGuess(sys *circuit.System, stages int) []float64 {
	khat := float64(stages-1) / 2
	uEq := 0.382 * netlist.VctlDefault * netlist.VctlDefault
	x := make([]float64, sys.Dim())
	for i := range x {
		name := sys.StateName(i)
		switch {
		case strings.HasSuffix(name, "#0"):
			x[i] = uEq
		case strings.HasSuffix(name, "#1"):
			x[i] = 0
		default:
			if k, ok := ringStageIndex(name); ok {
				x[i] = math.Cos(-2 * math.Pi * float64(k) * khat / float64(stages))
			}
		}
	}
	return x
}

// ringICCache memoizes the settle+shoot initial condition per (stages, N1)
// configuration, exactly like vcoICCache does for the paper VCO, so -cpu
// reruns and the dense/matfree pair share one preamble. N1 is part of the key
// because the envelope sweep collocates at 32 points while the quasiperiodic
// sweep uses 16 — the shot initial condition is an N1-point waveform.
var ringICCache sync.Map // [2]int{stages, n1} -> *vcoICEntry

func prepRingIC(b *testing.B, sys *circuit.System, stages, n1 int) ([]float64, float64) {
	b.Helper()
	v, _ := ringICCache.LoadOrStore([2]int{stages, n1}, &vcoICEntry{})
	e := v.(*vcoICEntry)
	e.once.Do(func() {
		fNom := netlist.RingVCONominalFreq(stages, netlist.VctlDefault)
		e.ic, e.w0, e.err = core.InitialCondition(sys, ringWaveGuess(sys, stages), 1/fNom,
			core.ICOptions{N1: n1})
	})
	if e.err != nil {
		b.Fatal(e.err)
	}
	return e.ic, e.w0
}

// ringQPStages is the quasiperiodic scaling sweep. It stops at 15 stages:
// the dense path's global bordered Jacobian there is already
// (16·8·45 + 8)² ≈ 3.3e7 entries, and its LU is the very O(total³) wall the
// matrix-free operator exists to avoid — larger dense points measure nothing
// new, they just burn CI minutes.
var ringQPStages = []int{3, 7, 15}

// ringQPEntry caches one stage count's envelope-derived quasiperiodic guess
// under the same once-with-stored-error discipline as vcoICEntry.
type ringQPEntry struct {
	once  sync.Once
	guess *core.QPGuess
	err   error
}

var ringQPCache sync.Map // stages -> *ringQPEntry

// prepRingQPGuess builds the quasiperiodic initial iterate for one ring: the
// memoized settle+shoot initial condition feeds a two-slow-period envelope
// run (the first period settles the MEMS transient, the trailing one is the
// steady quasiperiodic orbit), and core.GuessFromEnvelope samples that
// trailing window onto the N1×N2 grid. All of it runs outside the timer and
// is cached per stage count, so the dense/matfree pair iterate from the
// identical guess. It returns the guess and the slow period T2.
func prepRingQPGuess(b *testing.B, sys *circuit.System, stages, n1, n2 int) (*core.QPGuess, float64) {
	b.Helper()
	fNom := netlist.RingVCONominalFreq(stages, netlist.VctlDefault)
	t2 := netlist.CtlDivDefault / fNom
	xhat0, w0 := prepRingIC(b, sys, stages, n1)
	v, _ := ringQPCache.LoadOrStore(stages, &ringQPEntry{})
	e := v.(*ringQPEntry)
	e.once.Do(func() {
		env, err := core.Envelope(sys, xhat0, w0, 2*t2, core.EnvelopeOptions{
			N1: n1, H2: t2 / 16, Trap: true, ChordNewton: true,
		})
		if err != nil {
			e.err = err
			return
		}
		e.guess, e.err = core.GuessFromEnvelope(env, t2, n1, n2)
	})
	if e.err != nil {
		b.Fatal(e.err)
	}
	return e.guess, t2
}

func BenchmarkRingScaling(b *testing.B) {
	// Power-of-two collocation: at N1=25 every spectral matvec pays the
	// Bluestein chirp path (three padded 64-point FFTs per transform), which
	// dominates the matrix-free profile; N1=32 keeps the differentiation on
	// the radix-2 path — the configuration anyone scaling N1 up would pick.
	const n1 = 32
	for _, stages := range ringBenchStages {
		for _, mode := range []string{"dense", "matfree"} {
			b.Run(fmt.Sprintf("stages=%d/%s", stages, mode), func(b *testing.B) {
				sys := ringBenchSystem(b, stages)
				fNom := netlist.RingVCONominalFreq(stages, netlist.VctlDefault)
				xhat0, w0 := prepRingIC(b, sys, stages, n1)
				h2 := 20 / fNom
				opt := core.EnvelopeOptions{
					N1: n1, H2: h2, Trap: true, ChordNewton: true,
				}
				if mode == "matfree" {
					opt.Linear = core.LinearMatrixFree
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Envelope(sys, xhat0, w0, 3*h2, opt)
					if err != nil {
						b.Fatal(err)
					}
					sinkF = res.Omega[len(res.Omega)-1]
				}
			})
		}
	}
}

// BenchmarkQPRingScaling is BenchmarkRingScaling's claim for the other §4.1
// solver: one global quasiperiodic solve of the N-stage ring under its
// default slow control sweep, dense bordered Jacobian versus
// core.LinearMatrixFree. The dense path factorizes the full
// (N1·N2·n + N2)-unknown bivariate system, so it falls off the O(total³)
// cliff far sooner than the envelope (whose dense steps are only
// N1·n+1-sized) — the quasiperiodic solver is where the matrix-free operator
// pays first. `ci.sh ring-bench` snapshots both families and cmd/benchjson
// -ring-gate enforces each family's crossover independently.
func BenchmarkQPRingScaling(b *testing.B) {
	// N1=16 keeps the fast-axis differentiation on the radix-2 FFT path
	// (see BenchmarkRingScaling's n1 note); N2=8 resolves the sinusoidal
	// control modulation, which is spectrally almost pure on the slow axis.
	const n1, n2 = 16, 8
	for _, stages := range ringQPStages {
		for _, mode := range []string{"dense", "matfree"} {
			b.Run(fmt.Sprintf("stages=%d/%s", stages, mode), func(b *testing.B) {
				sys := ringBenchSystem(b, stages)
				guess, t2 := prepRingQPGuess(b, sys, stages, n1, n2)
				opt := core.QPOptions{N1: n1, N2: n2, ChordNewton: true}
				if mode == "matfree" {
					opt.Linear = core.LinearMatrixFree
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					qp, err := core.Quasiperiodic(sys, t2, guess, opt)
					if err != nil {
						b.Fatal(err)
					}
					sinkF = qp.OmegaMean()
				}
			})
		}
	}
}
