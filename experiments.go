package wampde

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/transient"
	"repro/internal/wave"
)

// This file contains the drivers that regenerate the paper's §5
// experiments. They are shared by the cmd/ harnesses, the benchmarks in
// bench_test.go and the integration tests, so every consumer measures the
// same computation.

// VCORunConfig parameterizes a §5 VCO experiment.
type VCORunConfig struct {
	Air   bool    // vacuum (Figures 7–9) or air (Figures 10–12)
	N1    int     // warped-axis collocation points (default 25)
	T2End float64 // simulated span (defaults: 60 µs vacuum, 3 ms air)
	Steps int     // nominal t2 steps (defaults: 400 vacuum, 600 air)
	// ChordNewton carries the chord factorization across t2 steps (see
	// core.EnvelopeOptions.ChordNewton). Off by default so the golden-figure
	// suite pins the historical once-per-step factorization bitwise; the cmd
	// drivers turn it on.
	ChordNewton bool
	// GMRES solves the per-step Jacobian systems iteratively (harmonic
	// preconditioner) instead of by dense LU — core.LinearGMRES, the
	// large-system path. Off by default.
	GMRES bool
	// RecycleKrylov carries a GCRO-DR deflation space across the GMRES
	// solves (see core.EnvelopeOptions.RecycleKrylov). Only meaningful with
	// GMRES; off by default so the goldens pin the historical path.
	RecycleKrylov bool
	// MatrixFree applies the bordered step Jacobian without assembling it —
	// core.LinearMatrixFree, the spectral-operator path (see DESIGN.md,
	// "Matrix-free operator"). Implies an iterative solve; takes precedence
	// over GMRES. Off by default: at the paper's 4-state VCO the assembled
	// Jacobian is tiny and the dense path is both faster and the one the
	// goldens pin.
	MatrixFree bool
	// Ctx, when non-nil, makes the run cancelable (see
	// core.EnvelopeOptions.Ctx). On cancellation RunPaperVCO returns the
	// partial run accumulated so far together with the error, so a driver
	// under -timeout can still emit what was computed.
	Ctx context.Context
}

func (c VCORunConfig) withDefaults() VCORunConfig {
	if c.N1 <= 0 {
		c.N1 = 25
	}
	if c.T2End <= 0 {
		if c.Air {
			c.T2End = 3e-3 // the paper's 3 ms air-damped run
		} else {
			c.T2End = 60e-6 // 1.5 control periods, as in Figure 7's span
		}
	}
	if c.Steps <= 0 {
		if c.Air {
			c.Steps = 600
		} else {
			c.Steps = 400
		}
	}
	return c
}

// VCORun holds a completed WaMPDE VCO experiment.
type VCORun struct {
	VCO      *VCO
	Config   VCORunConfig
	IC       []float64 // x̂(·,0)
	Omega0   float64
	Result   *EnvelopeResult
	WallTime time.Duration
}

// RunPaperVCO executes the §5 experiment: compute the unforced-oscillator
// initial condition, then envelope-follow the WaMPDE over the configured
// span.
func RunPaperVCO(cfg VCORunConfig) (*VCORun, error) {
	cfg = cfg.withDefaults()
	vco, err := NewPaperVCO(cfg.Air)
	if err != nil {
		return nil, err
	}
	u0 := vco.StaticDisplacement(vco.Params.VCtl(0))
	xGuess := []float64{0.5, 0, u0, 0}
	start := time.Now()
	xhat0, omega0, err := core.InitialCondition(vco, xGuess, 1/VCONominalFreq, core.ICOptions{N1: cfg.N1})
	if err != nil {
		return nil, fmt.Errorf("wampde: VCO initial condition: %w", err)
	}
	linear := core.LinearDenseLU
	if cfg.GMRES {
		linear = core.LinearGMRES
	}
	if cfg.MatrixFree {
		linear = core.LinearMatrixFree
	}
	res, err := core.Envelope(vco, xhat0, omega0, cfg.T2End, core.EnvelopeOptions{
		N1:            cfg.N1,
		H2:            cfg.T2End / float64(cfg.Steps),
		Trap:          true,
		ChordNewton:   cfg.ChordNewton,
		Linear:        linear,
		RecycleKrylov: cfg.RecycleKrylov,
		Ctx:           cfg.Ctx,
	})
	if err != nil {
		// A canceled (or failed) envelope still returns the partial result;
		// hand it to the caller alongside the error.
		if res != nil && len(res.T2) > 0 {
			return &VCORun{
				VCO: vco, Config: cfg, IC: xhat0, Omega0: omega0,
				Result: res, WallTime: time.Since(start),
			}, fmt.Errorf("wampde: VCO envelope: %w", err)
		}
		return nil, fmt.Errorf("wampde: VCO envelope: %w", err)
	}
	return &VCORun{
		VCO: vco, Config: cfg, IC: xhat0, Omega0: omega0,
		Result: res, WallTime: time.Since(start),
	}, nil
}

// FrequencyRange returns the min and max local frequency over the run —
// the paper's "varies by a factor of almost 3" observation (Figure 7).
func (r *VCORun) FrequencyRange() (min, max float64) {
	min, max = math.Inf(1), 0
	for _, w := range r.Result.Omega {
		min = math.Min(min, w)
		max = math.Max(max, w)
	}
	return
}

// BivariateGrid samples the capacitor-voltage bivariate waveform on an
// nT2-point slow-time grid (rows) by N1 warped-time samples (columns) —
// the Figure 8/11 surface.
func (r *VCORun) BivariateGrid(nT2 int) [][]float64 {
	res := r.Result
	out := make([][]float64, nT2)
	for k := 0; k < nT2; k++ {
		tt := r.Config.T2End * float64(k) / float64(nT2-1)
		seg := 0
		for seg < len(res.T2)-2 && res.T2[seg+1] < tt {
			seg++
		}
		row := make([]float64, res.N1)
		for j := 0; j < res.N1; j++ {
			row[j] = res.X[seg][j*res.N+r.VCO.TankNode]
		}
		out[k] = row
	}
	return out
}

// TransientBaseline integrates the same circuit from the same initial state
// with the conventional method at the given resolution.
type TransientBaseline struct {
	PtsPerCycle float64
	Result      *TransientResult
	WallTime    time.Duration
	Steps       int
}

// RunTransientBaseline runs direct transient simulation from the run's
// initial state at ptsPerCycle points per nominal oscillation period, over
// [0, tEnd] (tEnd ≤ the run's span; 0 means the full span).
func (r *VCORun) RunTransientBaseline(ptsPerCycle float64, tEnd float64) (*TransientBaseline, error) {
	if tEnd <= 0 {
		tEnd = r.Config.T2End
	}
	x0 := append([]float64(nil), r.IC[:r.VCO.Dim()]...)
	start := time.Now()
	tr, err := transient.Simulate(r.VCO, x0, 0, tEnd, transient.Options{
		Method: transient.Trap,
		H:      1 / (VCONominalFreq * ptsPerCycle),
	})
	if err != nil {
		return nil, err
	}
	return &TransientBaseline{
		PtsPerCycle: ptsPerCycle, Result: tr,
		WallTime: time.Since(start), Steps: tr.Steps,
	}, nil
}

// PhaseErrorVs measures the accumulated phase difference (cycles) between
// the WaMPDE reconstruction and a transient baseline at time t — the
// Figure 12 metric.
func (r *VCORun) PhaseErrorVs(tr *TransientBaseline, t float64) float64 {
	upTo := math.Min(t*1.05, r.Config.T2End)
	nPts := int(upTo * r.Result.Omega[len(r.Result.Omega)-1] * 30)
	if nPts < 1000 {
		nPts = 1000
	}
	ts, ys := r.Result.Reconstruct(r.VCO.TankNode, 0, upTo, nPts)
	pa := wave.UnwrappedPhase(ts, ys)
	pb := wave.UnwrappedPhase(tr.Result.T, tr.Result.Component(r.VCO.TankNode))
	return wave.PhaseErrorAt(pa, pb, t)
}

// WaveformRMSVs returns the RMS difference between the WaMPDE
// reconstruction and a transient baseline over [0, tEnd] — the Figure 9
// overlay quantified.
func (r *VCORun) WaveformRMSVs(tr *TransientBaseline, tEnd float64) float64 {
	sum, cnt := 0.0, 0
	for i, tv := range tr.Result.T {
		if tv > tEnd {
			break
		}
		d := r.Result.At(r.VCO.TankNode, tv) - tr.Result.X[i][r.VCO.TankNode]
		sum += d * d
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(cnt))
}

// TimePointCount returns the number of solution time points the WaMPDE run
// computed: accepted t2 steps × N1 collocation samples. The paper's cost
// comparison is in this currency (its "two orders of magnitude" refers to
// the work transient simulation needs at 1000 points per cycle).
func (r *VCORun) TimePointCount() int {
	return len(r.Result.T2) * r.Result.N1
}

// SpeedupRow is one line of the headline cost/accuracy comparison.
type SpeedupRow struct {
	Method      string
	TimePoints  int
	WallTime    time.Duration
	PhaseErrEnd float64 // cycles, vs. the finest transient reference
}

// SpeedupReport reproduces the end-of-§5 experiment on the air-damped VCO:
// WaMPDE vs transient at 50/100/1000 points per cycle, with accumulated
// phase error measured against the 1000-points-per-cycle reference at
// measureAt (defaults to 95% of the span).
func SpeedupReport(cfg VCORunConfig, measureAt float64) (*VCORun, []SpeedupRow, error) {
	cfg.Air = true
	cfg = cfg.withDefaults()
	if measureAt <= 0 {
		measureAt = 0.95 * cfg.T2End
	}
	run, err := RunPaperVCO(cfg)
	if err != nil {
		return nil, nil, err
	}
	ref, err := run.RunTransientBaseline(1000, 0)
	if err != nil {
		return nil, nil, err
	}
	refPhase := wave.UnwrappedPhase(ref.Result.T, ref.Result.Component(run.VCO.TankNode))

	rows := []SpeedupRow{{
		Method:     "WaMPDE",
		TimePoints: run.TimePointCount(),
		WallTime:   run.WallTime,
	}}
	ts, ys := run.Result.Reconstruct(run.VCO.TankNode, 0, cfg.T2End, run.TimePointCount()*40)
	rows[0].PhaseErrEnd = wave.PhaseErrorAt(wave.UnwrappedPhase(ts, ys), refPhase, measureAt)

	for _, ppc := range []float64{50, 100} {
		tr, err := run.RunTransientBaseline(ppc, 0)
		if err != nil {
			return nil, nil, err
		}
		ph := wave.UnwrappedPhase(tr.Result.T, tr.Result.Component(run.VCO.TankNode))
		rows = append(rows, SpeedupRow{
			Method:      fmt.Sprintf("transient %.0f pts/cycle", ppc),
			TimePoints:  tr.Steps,
			WallTime:    tr.WallTime,
			PhaseErrEnd: wave.PhaseErrorAt(ph, refPhase, measureAt),
		})
	}
	rows = append(rows, SpeedupRow{
		Method:     "transient 1000 pts/cycle (reference)",
		TimePoints: ref.Steps,
		WallTime:   ref.WallTime,
	})
	return run, rows, nil
}

// DefaultVCOParams exposes the calibrated vacuum parameters (see DESIGN.md).
func DefaultVCOParams() VCOParams { return circuit.DefaultVCOParams() }

// AirVCOParams exposes the calibrated air-damped parameters.
func AirVCOParams() VCOParams { return circuit.AirVCOParams() }

// NewVCO builds a §5 VCO from explicit parameters.
func NewVCO(p VCOParams) (*VCO, error) { return circuit.NewVCO(p) }
