package wampde_test

// Determinism contract of the internal/par worker pool: every parallelized
// kernel uses a chunk layout that depends only on the problem size and
// combines partial results in a fixed order, so solver output is bitwise
// identical at any worker count. These tests run the full WaMPDE envelope
// pipeline — initial condition, Newton, LU, preconditioners, FFT batches —
// under several pool sizes and compare the results exactly.

import (
	"fmt"
	"runtime"
	"testing"

	wampde "repro"
	"repro/internal/par"
)

// shortVacuumRun envelope-follows the vacuum VCO over a reduced span —
// enough t2 steps to exercise every parallel kernel repeatedly, small
// enough to keep the multi-worker sweep cheap.
func shortVacuumRun(t *testing.T) *wampde.VCORun {
	t.Helper()
	run, err := wampde.RunPaperVCO(wampde.VCORunConfig{N1: 15, T2End: 20e-6, Steps: 60})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func sameRun(t *testing.T, want, got *wampde.VCORun, label string) {
	t.Helper()
	res, ref := got.Result, want.Result
	if len(res.Omega) != len(ref.Omega) || len(res.X) != len(ref.X) {
		t.Fatalf("%s: result shape differs: %d/%d steps vs %d/%d", label,
			len(res.Omega), len(res.X), len(ref.Omega), len(ref.X))
	}
	for k := range ref.Omega {
		if res.Omega[k] != ref.Omega[k] {
			t.Fatalf("%s: omega[%d] = %.17g, want bitwise %.17g", label, k, res.Omega[k], ref.Omega[k])
		}
	}
	for k := range ref.X {
		for j := range ref.X[k] {
			if res.X[k][j] != ref.X[k][j] {
				t.Fatalf("%s: X[%d][%d] = %.17g, want bitwise %.17g", label, k, j, res.X[k][j], ref.X[k][j])
			}
		}
	}
}

// TestEnvelopeWorkerDeterminism runs the same vacuum-VCO envelope with the
// pool pinned to 1, 2 and 8 workers and demands bitwise-identical local
// frequency and waveform trajectories.
func TestEnvelopeWorkerDeterminism(t *testing.T) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	ref := shortVacuumRun(t)

	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		sameRun(t, ref, shortVacuumRun(t), fmt.Sprintf("workers=%d", w))
	}
}

// TestRecycleWorkerDeterminism runs the GMRES + Krylov-recycling envelope
// (the iterative large-system path with chord Newton, as the cmd drivers
// configure it) at 1, 2 and 8 workers and demands bitwise-identical results:
// the recycler's projection, Arnoldi and harvest arithmetic is all serial, so
// the worker count may only change how the parallel assembly and
// preconditioner kernels chunk — which the par contract keeps exact.
func TestRecycleWorkerDeterminism(t *testing.T) {
	recycleRun := func() *wampde.VCORun {
		run, err := wampde.RunPaperVCO(wampde.VCORunConfig{
			N1: 15, T2End: 20e-6, Steps: 60,
			ChordNewton: true, GMRES: true, RecycleKrylov: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	ref := recycleRun()
	if ref.Result.RecycleHits == 0 {
		t.Fatal("recycling never engaged on the determinism configuration")
	}

	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		got := recycleRun()
		sameRun(t, ref, got, fmt.Sprintf("recycle workers=%d", w))
		if got.Result.GMRESMatVecs != ref.Result.GMRESMatVecs || got.Result.RecycleHits != ref.Result.RecycleHits {
			t.Errorf("workers=%d: solver cost drifted: matvecs %d vs %d, hits %d vs %d",
				w, got.Result.GMRESMatVecs, ref.Result.GMRESMatVecs,
				got.Result.RecycleHits, ref.Result.RecycleHits)
		}
	}
}

// TestEnvelopeEnvWorkerOverride checks the WAMPDE_WORKERS environment
// override reaches the pool and preserves the same bitwise results.
func TestEnvelopeEnvWorkerOverride(t *testing.T) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	ref := shortVacuumRun(t)

	par.SetWorkers(0) // clear the programmatic override so the env rules
	t.Setenv(par.EnvWorkers, "3")
	if got := par.Workers(); got != 3 {
		t.Fatalf("Workers() = %d with %s=3", got, par.EnvWorkers)
	}
	sameRun(t, ref, shortVacuumRun(t), par.EnvWorkers+"=3")
}

// TestParSpeedup asserts the ≥2× four-core speedup target on the
// BenchmarkParSpeedup configuration. It needs real cores to mean anything,
// so it is skipped on small machines and in -short runs (benchmarks remain
// the authoritative measurement; this is a regression tripwire).
func TestParSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >=4 CPUs to measure parallel speedup, have %d", runtime.NumCPU())
	}
	cfg := wampde.VCORunConfig{Air: true, N1: 49, T2End: 0.5e-3, Steps: 100}
	timeRun := func(workers int) float64 {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		run, err := wampde.RunPaperVCO(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return run.WallTime.Seconds()
	}
	timeRun(1) // warm caches so both measurements see the same state
	serial := timeRun(1)
	parallel := timeRun(4)
	speedup := serial / parallel
	t.Logf("serial %.3fs, 4 workers %.3fs, speedup %.2fx", serial, parallel, speedup)
	if speedup < 2 {
		t.Errorf("parallel speedup %.2fx at 4 workers, want >= 2x", speedup)
	}
}
