package wampde_test

// BenchmarkConverterRipple pins the converter workload's wall-clock claim:
// ripple tracking under slow duty modulation, the MPDE ripple envelope
// against the brute-force transient. The scenario is the buck catalog
// circuit at fsw = 100 kHz with its duty modulated 0.35..0.55 at 100 Hz
// (duty as a slow t2 input — the converter mirror of the VCO's control
// sweep), integrated over 50 ms = 5000 switching periods. The transient must
// resolve every switching edge (BDF2 at 200 steps per period — 10^6 steps),
// while the envelope's t2 step follows only the modulation (50 switching
// periods per step, 101 steps), with a lax chord gate and the converter
// Newton tolerance so carried factors survive the slow duty drift. Measured
// on the dev machine: 0.41 s vs 1.9 s (3.8x); the envelope's cycle mean
// tracks the transient within 0.32 V (2.7% of the 12 V rail) past the
// start-up ring — the same tolerance class as the ripple agreement gate
// (internal/mpde), which owns the accuracy claim.
//
// `ci.sh converter` runs this benchmark and gates it with cmd/benchjson
// -converter-gate (the mpde mode must not be slower than the transient);
// `ci.sh converter-bench` snapshots the pair into BENCH_pr10.json. The gate
// is a within-run ratio, so it holds on any machine. The speedup grows with
// the scale separation fsw·T — 50 ms is the largest horizon worth its CI
// wall-clock, not the method's ceiling.

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/mpde"
	"repro/internal/netlist"
	"repro/internal/transient"
)

// converterBenchSystem builds the duty-modulated buck: the catalog generator
// output with the DC duty swapped for the 100 Hz modulation source.
func converterBenchSystem(b *testing.B, fsw float64) *circuit.System {
	b.Helper()
	src, err := netlist.BuckConverter(0.5, fsw)
	if err != nil {
		b.Fatal(err)
	}
	src = strings.Replace(src, "PWM(DC(0.5)", "PWM(SIN(0.45 0.1 100)", 1)
	ckt, err := netlist.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := ckt.Build()
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkConverterRipple(b *testing.B) {
	const fsw = 1e5
	const t2End = 5e-2
	tsw := 1 / fsw
	b.Run("buck/mpde", func(b *testing.B) {
		sys := converterBenchSystem(b, fsw)
		n1 := netlist.BuckN1
		opt := mpde.RippleOptions(n1, fsw, 50)
		// Converter chord preset (see transient.ConverterNewton for the
		// residual-floor rationale); the lax contraction gate keeps the
		// carried LU through the slow duty drift instead of refactoring on
		// every modulation-induced Jacobian wiggle.
		opt.ChordContraction = 0.5
		opt.Newton = transient.ConverterNewton
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := mpde.RippleEnvelope(sys, make([]float64, n1*sys.Dim()), fsw, t2End, opt)
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.Omega[len(res.Omega)-1]
		}
	})
	b.Run("buck/transient", func(b *testing.B) {
		sys := converterBenchSystem(b, fsw)
		iout, err := sys.NodeIndex("out")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := transient.Simulate(sys, make([]float64, sys.Dim()), 0, t2End,
				transient.Options{Method: transient.BDF2, H: tsw / 200,
					Newton: transient.ConverterNewton})
			if err != nil {
				b.Fatal(err)
			}
			sinkF = res.At(t2End, iout)
		}
	})
}
