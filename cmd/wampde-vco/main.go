// Command wampde-vco regenerates the paper's §5 VCO experiments:
//
//	default (vacuum MEMS cavity, control period 30× the nominal cycle):
//	  Fig 7: local frequency ω(t2) — swings by a factor of ≈3
//	  Fig 8: bivariate capacitor voltage — amplitude/shape vary with control
//	  Fig 9: WaMPDE reconstruction vs transient simulation — they overlay
//
//	-air (air-filled cavity, control period 1 ms ≈ 1000× the cycle):
//	  Fig 10: local frequency — settling + smaller swing
//	  Fig 11: bivariate voltage — amplitude nearly constant
//	  Fig 12: a few cycles near 0.3 ms: transient at 50/100 pts per cycle
//	          accumulates phase error, the WaMPDE does not
//
// Use -fig to select one figure, -csv <dir> to write the data files.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	wampde "repro"
	"repro/internal/core"
	"repro/internal/solverr"
	"repro/internal/textplot"
)

// die reports err and exits with its failure kind's status code (see
// solverr.ExitCode) so sweep harnesses can dispatch without parsing stderr.
func die(err error) {
	fmt.Fprintln(os.Stderr, "wampde-vco:", err)
	os.Exit(solverr.ExitCode(err))
}

func main() {
	air := flag.Bool("air", false, "air-damped configuration (Figures 10-12)")
	qp := flag.Bool("qp", false, "also solve the §4.1 quasiperiodic (periodic-BC) problem and compare")
	fig := flag.Int("fig", 0, "specific figure (7-9 vacuum, 10-12 air); 0 = all for the configuration")
	csvDir := flag.String("csv", "", "directory to write CSV data files into")
	steps := flag.Int("steps", 0, "t2 steps (default 400 vacuum / 600 air)")
	chord := flag.Bool("chord", true, "carry the chord-Newton factorization across t2 steps")
	gmres := flag.Bool("gmres", false, "solve the per-step Jacobian systems with preconditioned GMRES instead of dense LU")
	matfree := flag.Bool("matfree", false, "apply the bordered Jacobian matrix-free (spectral operator, no assembly); implies an iterative solve and overrides -gmres")
	recycle := flag.Bool("recycle", true, "carry the GCRO-DR deflation space across GMRES solves (with -gmres/-matfree)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the envelope run (0 = none); on expiry the partial result computed so far is still reported")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wampde-vco:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "wampde-vco:", err)
			}
		}()
	}

	cfg := wampde.VCORunConfig{Air: *air, Steps: *steps, ChordNewton: *chord,
		GMRES: *gmres, MatrixFree: *matfree, RecycleKrylov: *recycle}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		cfg.Ctx = ctx
	}
	run, err := wampde.RunPaperVCO(cfg)
	if err != nil {
		if run == nil {
			die(err)
		}
		// Canceled mid-run: report what was computed before the deadline;
		// main still exits with the failure kind's status at the end.
		fmt.Fprintln(os.Stderr, "wampde-vco: partial run:", err)
	}
	if rescues := run.Result.FullNewtonRescues + run.Result.DampedNewtonRescues +
		run.Result.ContinuationRescues + run.Result.LinearGMRESRescues +
		run.Result.LinearLURescues + run.Result.StepHalvings; rescues > 0 {
		fmt.Printf("solve supervision: %d full-Newton, %d damped, %d continuation rescues; %d GMRES->GMRES, %d GMRES->LU (%d sparse) linear rescues; %d step halvings\n",
			run.Result.FullNewtonRescues, run.Result.DampedNewtonRescues, run.Result.ContinuationRescues,
			run.Result.LinearGMRESRescues, run.Result.LinearLURescues, run.Result.LinearSparseLURescues,
			run.Result.StepHalvings)
	}
	fmt.Printf("WaMPDE envelope: %d t2 steps, %d Newton iterations, %v\n",
		len(run.Result.T2), run.Result.NewtonIterTotal, run.WallTime)
	fmt.Printf("Jacobian factorizations: %d (%d chord reuses)\n",
		run.Result.JacobianEvals, run.Result.JacobianReuses)
	if *gmres || *matfree {
		fmt.Printf("GMRES: %d solves, %d matvecs; recycler: %d hits, %d harvests, %d invalidations\n",
			run.Result.GMRESSolves, run.Result.GMRESMatVecs,
			run.Result.RecycleHits, run.Result.RecycleHarvests, run.Result.RecycleInvalidations)
	}
	fmt.Printf("initial local frequency: %.3f MHz (paper: ≈0.75 MHz)\n\n", run.Omega0/1e6)

	if *qp && !*air {
		quasiperiodicCompare(run, *csvDir)
	}
	show := func(n int) bool { return *fig == 0 || *fig == n }
	if !*air {
		if show(7) {
			frequencyFigure(run, 7, *csvDir)
		}
		if show(8) {
			bivariateFigure(run, 8, *csvDir)
		}
		if show(9) {
			overlayFigure(run, *csvDir)
		}
	} else {
		if show(10) {
			frequencyFigure(run, 10, *csvDir)
		}
		if show(11) {
			bivariateFigure(run, 11, *csvDir)
		}
		if show(12) {
			phaseErrorFigure(run, *csvDir)
		}
	}
	if err != nil {
		// Partial (e.g. deadline-canceled) run: everything computed was
		// rendered above, but the exit status still reports the failure kind.
		os.Exit(solverr.ExitCode(err))
	}
}

// quasiperiodicCompare solves the §4.1 periodic-boundary problem over one
// control period and prints its ω(t2) against the envelope's settled tail.
func quasiperiodicCompare(run *wampde.VCORun, dir string) {
	ctlPeriod := 30.0 / wampde.VCONominalFreq
	// The envelope run spans 1.5 control periods by default; extend it so a
	// full settled period is available for the guess.
	ic := core.ResampleBivariate(run.IC, run.Result.N1, run.VCO.Dim(), 17)
	env, err := wampde.RunEnvelope(run.VCO, ic, run.Omega0, 3*ctlPeriod, wampde.EnvelopeOptions{
		N1: 17, H2: ctlPeriod / 200, Trap: true,
	})
	if err != nil {
		die(fmt.Errorf("qp envelope: %w", err))
	}
	guess, err := wampde.QPGuessFromEnvelope(env, ctlPeriod, 17, 15)
	if err != nil {
		die(fmt.Errorf("qp guess: %w", err))
	}
	qp, err := wampde.RunQuasiperiodic(run.VCO, ctlPeriod, guess, wampde.QPOptions{N1: 17, N2: 15})
	if err != nil {
		die(fmt.Errorf("qp solve: %w", err))
	}
	fmt.Println("§4.1 quasiperiodic solve (one control period, periodic BCs):")
	fmt.Printf("  mean local frequency ω0 = %.4f MHz\n", qp.OmegaMean()/1e6)
	fmt.Println("  t2/T2   ω_QP (MHz)   ω_envelope tail (MHz)")
	var t2c, wq, wegrid []float64
	for j2 := 0; j2 < 15; j2++ {
		tt := 2*ctlPeriod + ctlPeriod*float64(j2)/15
		we := env.OmegaAt(tt)
		fmt.Printf("  %5.2f   %9.4f   %9.4f\n", float64(j2)/15, qp.Omega[j2]/1e6, we/1e6)
		t2c = append(t2c, float64(j2)/15)
		wq = append(wq, qp.Omega[j2])
		wegrid = append(wegrid, we)
	}
	fmt.Println()
	writeCSV(dir, "qp_frequency.csv", []string{"t2_frac", "freq_qp", "freq_envelope"}, t2c, wq, wegrid)
}

func writeCSV(dir, name string, headers []string, cols ...[]float64) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "wampde-vco:", err)
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wampde-vco:", err)
		return
	}
	defer f.Close()
	if err := textplot.WriteCSV(f, headers, cols...); err != nil {
		fmt.Fprintln(os.Stderr, "wampde-vco:", err)
	}
}

func frequencyFigure(run *wampde.VCORun, figNo int, dir string) {
	res := run.Result
	freqMHz := make([]float64, len(res.Omega))
	for i, w := range res.Omega {
		freqMHz[i] = w / 1e6
	}
	min, max := run.FrequencyRange()
	title := fmt.Sprintf("Figure %d: local frequency ω(t2); range %.2f–%.2f MHz (×%.2f)",
		figNo, min/1e6, max/1e6, max/min)
	p := textplot.NewPlot(title, 72, 18)
	p.XLabel, p.YLabel = "t2 (s)", "f (MHz)"
	p.Add(res.T2, freqMHz, '*')
	fmt.Print(p.Render())
	fmt.Println()
	writeCSV(dir, fmt.Sprintf("fig%02d_frequency.csv", figNo), []string{"t2", "freq_hz"}, res.T2, res.Omega)
}

func bivariateFigure(run *wampde.VCORun, figNo int, dir string) {
	grid := run.BivariateGrid(40)
	fmt.Printf("Figure %d: bivariate capacitor voltage x̂(t1,t2)\n", figNo)
	fmt.Print(textplot.Heatmap("   rows: slow time t2, cols: warped time t1 (one cycle)", grid))
	// Amplitude variation along t2 — the paper's Figure 8 vs 11 contrast.
	minAmp, maxAmp := 1e30, 0.0
	for _, row := range grid {
		lo, hi := row[0], row[0]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		amp := (hi - lo) / 2
		if amp < minAmp {
			minAmp = amp
		}
		if amp > maxAmp {
			maxAmp = amp
		}
	}
	fmt.Printf("   oscillation amplitude over the sweep: %.2f–%.2f V (ratio %.2f)\n\n",
		minAmp, maxAmp, maxAmp/minAmp)
	if dir != "" {
		var t1c, t2c, vc []float64
		res := run.Result
		for k, row := range grid {
			for j, v := range row {
				t1c = append(t1c, float64(j)/float64(res.N1))
				t2c = append(t2c, run.Config.T2End*float64(k)/float64(len(grid)-1))
				vc = append(vc, v)
			}
		}
		writeCSV(dir, fmt.Sprintf("fig%02d_bivariate.csv", figNo), []string{"t1", "t2", "v"}, t1c, t2c, vc)
	}
}

func overlayFigure(run *wampde.VCORun, dir string) {
	tr, err := run.RunTransientBaseline(200, 0)
	if err != nil {
		die(fmt.Errorf("transient: %w", err))
	}
	rms := run.WaveformRMSVs(tr, run.Config.T2End)
	pe := run.PhaseErrorVs(tr, 0.9*run.Config.T2End)
	// Render a window dense enough to see the FM undulation density vary.
	t0, t1 := 0.0, run.Config.T2End
	ts, ys := run.Result.Reconstruct(run.VCO.TankNode, t0, t1, 4000)
	yt := make([]float64, len(ts))
	for i, tv := range ts {
		yt[i] = tr.Result.At(tv, run.VCO.TankNode)
	}
	p := textplot.NewPlot(
		fmt.Sprintf("Figure 9: WaMPDE ('*') vs transient ('o'); RMS diff %.3f V, phase err %.4f cycles", rms, pe),
		72, 18)
	p.XLabel, p.YLabel = "t (s)", "v (V)"
	p.Add(ts, yt, 'o')
	p.Add(ts, ys, '*')
	fmt.Print(p.Render())
	fmt.Println()
	writeCSV(dir, "fig09_overlay.csv", []string{"t", "v_wampde", "v_transient"}, ts, ys, yt)
}

func phaseErrorFigure(run *wampde.VCORun, dir string) {
	fmt.Println("Figure 12: transient phase error accumulates; the WaMPDE phase stays pinned")
	ref, err := run.RunTransientBaseline(1000, 0)
	if err != nil {
		die(fmt.Errorf("reference transient: %w", err))
	}
	refPhase := wampde.UnwrappedPhase(ref.Result.T, ref.Result.Component(run.VCO.TankNode))
	measure := []float64{0.3e-3, 1e-3, 2e-3, 2.9e-3}
	rows := [][]string{}
	for _, ppc := range []float64{50, 100} {
		tr, err := run.RunTransientBaseline(ppc, 0)
		if err != nil {
			die(err)
		}
		ph := wampde.UnwrappedPhase(tr.Result.T, tr.Result.Component(run.VCO.TankNode))
		row := []string{fmt.Sprintf("transient %.0f pts/cycle", ppc)}
		for _, tv := range measure {
			row = append(row, fmt.Sprintf("%.3f", wampde.PhaseErrorAt(ph, refPhase, tv)))
		}
		rows = append(rows, row)
	}
	ts, ys := run.Result.Reconstruct(run.VCO.TankNode, 0, run.Config.T2End, run.TimePointCount()*40)
	wp := wampde.UnwrappedPhase(ts, ys)
	row := []string{"WaMPDE"}
	for _, tv := range measure {
		row = append(row, fmt.Sprintf("%.3f", wampde.PhaseErrorAt(wp, refPhase, tv)))
	}
	rows = append(rows, row)
	headers := []string{"method"}
	for _, tv := range measure {
		headers = append(headers, fmt.Sprintf("phase err @%.1fms (cycles)", tv*1e3))
	}
	fmt.Print(textplot.Table(headers, rows))
	fmt.Println("\n(the paper: 50 pts/cycle builds up error by 0.3 ms; 100 is better but grows later;\n 1000 pts/cycle is needed to match the WaMPDE — its cost disadvantage is the headline speedup)")

	// A few cycles near 0.3 ms, as in the paper's Figure 12 inset.
	t0, t1 := 3.0e-4, 3.06e-4
	tsw, ysw := run.Result.Reconstruct(run.VCO.TankNode, t0, t1, 600)
	tr50, err := run.RunTransientBaseline(50, t1*1.02)
	if err != nil {
		die(err)
	}
	y50 := make([]float64, len(tsw))
	yrf := make([]float64, len(tsw))
	for i, tv := range tsw {
		y50[i] = tr50.Result.At(tv, run.VCO.TankNode)
		yrf[i] = ref.Result.At(tv, run.VCO.TankNode)
	}
	p := textplot.NewPlot("   cycles near 0.3 ms: WaMPDE '*', reference 'o', transient@50 'x' (shifted)", 72, 16)
	p.Add(tsw, yrf, 'o')
	p.Add(tsw, y50, 'x')
	p.Add(tsw, ysw, '*')
	fmt.Print(p.Render())
	writeCSV(dir, "fig12_cycles.csv", []string{"t", "v_wampde", "v_ref1000", "v_tr50"}, tsw, ysw, yrf, y50)
}
