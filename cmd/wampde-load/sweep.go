package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// sweepNDLine is one NDJSON line of a /v1/sweep response, parsed at the wire
// level (the harness deliberately does not import internal/serve): exactly
// one of Sweep (header), Seq (point record), or Done (trailer) is set.
type sweepNDLine struct {
	Sweep *struct {
		Hash   string `json:"hash"`
		Param  string `json:"param"`
		Points int    `json:"points"`
		Lanes  int    `json:"lanes"`
		Have   int    `json:"have"`
	} `json:"sweep"`
	Done *struct {
		Points    int    `json:"points"`
		Emitted   int    `json:"emitted"`
		Solved    int    `json:"solved"`
		CacheHits int    `json:"cache_hits"`
		Coalesced int    `json:"coalesced"`
		Replayed  int    `json:"replayed"`
		Errors    int    `json:"errors"`
		Error     string `json:"error"`
	} `json:"done"`
	Seq    *int            `json:"seq"`
	Index  int             `json:"index"`
	VCtlDC float64         `json:"vctl_dc"`
	Hash   string          `json:"hash"`
	Cache  string          `json:"cache"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body"`
	Error  json.RawMessage `json:"error"`
}

// sweepBody builds a /v1/sweep request over explicit vctl values, formatted
// with the same %.4f the single-solve builder uses so the canonical point
// requests — and therefore the content hashes — match exactly.
func sweepBody(values []float64, tstop, h float64, lanes int, extra string) string {
	var vs []string
	for _, v := range values {
		vs = append(vs, fmt.Sprintf("%.4f", v))
	}
	return fmt.Sprintf(`{"circuit":"paper-vco","analysis":"transient","options":{"tstop":%g,"h":%g},"sweep":{"param":"vctl_dc","values":[%s]},"lanes":%d%s}`,
		tstop, h, strings.Join(vs, ","), lanes, extra)
}

func sweepGridBody(from, to float64, points int, tstop, h float64, lanes int) string {
	return fmt.Sprintf(`{"circuit":"paper-vco","analysis":"transient","options":{"tstop":%g,"h":%g},"sweep":{"param":"vctl_dc","from":%.4f,"to":%.4f,"points":%d},"lanes":%d}`,
		tstop, h, from, to, points, lanes)
}

// postSweep runs a sweep to completion and splits the stream into header,
// point records, and trailer, failing the harness on any framing violation.
func (h *harness) postSweep(phase, body string) (recs []sweepNDLine, trailer *sweepNDLine, elapsed time.Duration, ok bool) {
	t0 := time.Now()
	resp, err := h.client.Post(h.url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		h.errf("%s: post: %v", phase, err)
		return nil, nil, 0, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	elapsed = time.Since(t0)
	if err != nil {
		h.errf("%s: read stream: %v", phase, err)
		return nil, nil, 0, false
	}
	if resp.StatusCode != 200 {
		h.errf("%s: status %d (%.300s)", phase, resp.StatusCode, data)
		return nil, nil, 0, false
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	for i, raw := range lines {
		var ln sweepNDLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			h.errf("%s: line %d: %v (%.200s)", phase, i, err, raw)
			return nil, nil, 0, false
		}
		switch {
		case ln.Sweep != nil:
			if i != 0 {
				h.errf("%s: header on line %d, want 0", phase, i)
				return nil, nil, 0, false
			}
		case ln.Done != nil:
			t := ln
			trailer = &t
		case ln.Seq != nil:
			if trailer != nil {
				h.errf("%s: point record after the trailer", phase)
				return nil, nil, 0, false
			}
			recs = append(recs, ln)
		default:
			h.errf("%s: unrecognized line %d (%.200s)", phase, i, raw)
			return nil, nil, 0, false
		}
	}
	if trailer == nil {
		h.errf("%s: stream ended without a trailer", phase)
		return nil, nil, 0, false
	}
	if trailer.Done.Error != "" {
		h.errf("%s: trailer error %q", phase, trailer.Done.Error)
		return nil, nil, 0, false
	}
	return recs, trailer, elapsed, true
}

// killSweep opens a sweep, reads the header plus want point records, then
// slams the connection shut — the client-side kill the resume protocol is
// built around.
func (h *harness) killSweep(phase, body string, want int) (got int, ok bool) {
	req, err := http.NewRequest("POST", h.url+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		h.errf("%s: build kill request: %v", phase, err)
		return 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		h.errf("%s: kill post: %v", phase, err)
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		h.errf("%s: kill status %d (%.300s)", phase, resp.StatusCode, data)
		return 0, false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		h.errf("%s: kill stream produced no header", phase)
		return 0, false
	}
	for got < want && sc.Scan() {
		var ln sweepNDLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			h.errf("%s: kill line: %v", phase, err)
			return got, false
		}
		if ln.Seq != nil {
			got++
		}
	}
	// Closing the body mid-stream cancels the request context server-side.
	return got, got == want
}

func (h *harness) metrics(phase string) map[string]int64 {
	resp, err := h.client.Get(h.url + "/metrics")
	if err != nil {
		h.errf("%s: metrics: %v", phase, err)
		return nil
	}
	defer resp.Body.Close()
	m := map[string]int64{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		h.errf("%s: metrics decode: %v", phase, err)
		return nil
	}
	return m
}

// waitSweepDrain polls /metrics until the killed sweep's work has left the
// scheduler, so the resume's solve accounting is not racing the corpse.
func (h *harness) waitSweepDrain(phase string) bool {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		m := h.metrics(phase)
		if m == nil {
			return false
		}
		if m["in_flight"] == 0 && m["queue_depth"] == 0 {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.errf("%s: killed sweep never drained (in-flight work stuck)", phase)
	return false
}

// runSweepPhases drives the /v1/sweep phases: cache dedup against single
// solves, batch amortization vs independent cold solves, and kill/resume.
func runSweepPhases(h *harness, points int, gate float64, check, bench bool) {
	sweepDedup(h)
	sweepAmortization(h, points, gate, check, bench)
	sweepResume(h)
}

// sweepDedup proves the serve-tier dedup story in both directions: points a
// single solve already cached stream back as byte-identical hits, and points
// a sweep solved satisfy later single requests from the cache, also
// byte-identical. This only holds because sweep points run the exact cold
// single-solve path (DESIGN.md "Sweep jobs").
func sweepDedup(h *harness) {
	const tstop, hstep = 2e-6, 1e-8
	warm := []float64{7.00, 7.05, 7.10, 7.15} // solved as singles first
	cold := []float64{7.20, 7.25, 7.30, 7.35} // first solved by the sweep

	singles := map[string][]byte{} // "%.4f" vctl -> single-solve body
	for _, v := range warm {
		status, _, body, err := h.post(sweepRequest(v, tstop, hstep))
		if err != nil || status != 200 {
			h.errf("sweep-dedup: priming single vctl %.4f: status %d err %v", v, status, err)
			return
		}
		singles[fmt.Sprintf("%.4f", v)] = body
	}

	all := append(append([]float64{}, warm...), cold...)
	recs, trailer, _, ok := h.postSweep("sweep-dedup", sweepBody(all, tstop, hstep, 2, ""))
	if !ok {
		return
	}
	if len(recs) != len(all) {
		h.errf("sweep-dedup: %d point records, want %d", len(recs), len(all))
		return
	}
	hits, fresh := 0, 0
	for _, r := range recs {
		key := fmt.Sprintf("%.4f", r.VCtlDC)
		if prior, isWarm := singles[key]; isWarm {
			if r.Cache != "hit" && r.Cache != "coalesced" {
				h.errf("sweep-dedup: pre-solved point %s streamed as %q, want a cache hit", key, r.Cache)
			}
			if !bytes.Equal(prior, r.Body) {
				h.errf("sweep-dedup: point %s sweep body differs from its single-solve body", key)
			}
			hits++
		} else {
			if r.Cache == "hit" {
				h.errf("sweep-dedup: fresh point %s claims a cache hit", key)
			}
			singles[key] = r.Body
			fresh++
		}
	}
	if hits != len(warm) || fresh != len(cold) {
		h.errf("sweep-dedup: %d hits / %d fresh, want %d / %d", hits, fresh, len(warm), len(cold))
	}
	if trailer.Done.Solved > len(cold) {
		h.errf("sweep-dedup: trailer solved %d, want at most %d (primed points must not re-solve)",
			trailer.Done.Solved, len(cold))
	}

	// Reverse direction: singles for the sweep-solved voltages must hit.
	for _, v := range cold {
		status, xcache, body, err := h.post(sweepRequest(v, tstop, hstep))
		key := fmt.Sprintf("%.4f", v)
		if err != nil || status != 200 {
			h.errf("sweep-dedup: single after sweep vctl %s: status %d err %v", key, status, err)
			continue
		}
		if xcache != "hit" {
			h.errf("sweep-dedup: single after sweep vctl %s: X-Cache %q, want hit", key, xcache)
		}
		if !bytes.Equal(body, singles[key]) {
			h.errf("sweep-dedup: single body for vctl %s differs from its sweep record", key)
		}
	}
	fmt.Printf("sweep-dedup: %d pre-solved points hit, %d fresh points seeded the cache for later singles\n",
		hits, fresh)
}

// sweepAmortization measures the tentpole economics: one -sweep-points grid
// sweep versus the same number of independent cold single solves, estimated
// from a sequential cold sample on a disjoint voltage family. The -check
// gate is the acceptance criterion: sweep per-point wall ≤ gate× a cold
// single (0.5 by default; 0 disables the gate for race-instrumented runs,
// whose runtime serializes the lanes and distorts the ratio).
func sweepAmortization(h *harness, points int, gate float64, check, bench bool) {
	// A short solve (~50 steps): the regime a 200-point batch is for, where
	// per-request overhead (HTTP framing, admission, decode) rivals the solve
	// itself. The batch amortizes that overhead on any machine; on multi-core
	// servers lane parallelism stacks on top.
	const tstop, hstep = 5e-7, 1e-8
	const coldSample = 16

	t0 := time.Now()
	for i := 0; i < coldSample; i++ {
		v := 6.50 + 0.05*float64(i) // disjoint from the 4–6 V grid below
		status, xcache, _, err := h.post(sweepRequest(v, tstop, hstep))
		if err != nil || status != 200 {
			h.errf("sweep-amortization: cold single %d: status %d err %v", i, status, err)
			return
		}
		if xcache != "miss" {
			h.errf("sweep-amortization: cold single %d served from %q, want a fresh solve", i, xcache)
			return
		}
	}
	coldMean := time.Since(t0) / coldSample

	recs, trailer, sweepWall, ok := h.postSweep("sweep-amortization",
		sweepGridBody(4.0, 6.0, points, tstop, hstep, 4))
	if !ok {
		return
	}
	if len(recs) != points || trailer.Done.Errors != 0 {
		h.errf("sweep-amortization: %d records / %d errors, want %d / 0", len(recs), trailer.Done.Errors, points)
		return
	}
	if trailer.Done.Solved != points {
		h.errf("sweep-amortization: trailer solved %d, want %d fresh solves", trailer.Done.Solved, points)
	}
	perPoint := sweepWall / time.Duration(points)
	ratio := float64(perPoint) / float64(coldMean)
	fmt.Printf("sweep-amortization: %d-point grid in %v (%v/point) vs cold single %v — %.2fx\n",
		points, sweepWall.Round(time.Millisecond), perPoint.Round(time.Microsecond),
		coldMean.Round(time.Microsecond), ratio)
	if bench {
		fmt.Printf("BenchmarkServeSweepPoint %d %d ns/op\n", points, perPoint.Nanoseconds())
		fmt.Printf("BenchmarkServeColdSingle %d %d ns/op\n", coldSample, coldMean.Nanoseconds())
	}
	if check && gate > 0 && ratio > gate {
		h.errf("sweep-amortization: per-point cost %.2fx a cold single, gate is %.2fx", ratio, gate)
	}
}

// sweepResume kills a sweep after two received records and resumes it with
// have=2. The resumed stream must emit exactly the missing points, each
// once, and the server must re-solve at most the single point that was in
// flight when the connection died.
func sweepResume(h *harness) {
	const tstop, hstep = 2e-5, 1e-8 // ~10x the mix solve, so the kill lands mid-flight
	const n, have = 12, 2
	var vals []float64
	for i := 0; i < n; i++ {
		vals = append(vals, 9.00+0.05*float64(i))
	}
	body := sweepBody(vals, tstop, hstep, 1, "")

	m0 := h.metrics("sweep-resume")
	if m0 == nil {
		return
	}
	if got, ok := h.killSweep("sweep-resume", body, have); !ok {
		h.errf("sweep-resume: read %d records before the kill, want %d", got, have)
		return
	}
	if !h.waitSweepDrain("sweep-resume") {
		return
	}

	resume := body[:len(body)-1] + fmt.Sprintf(`,"resume":true,"have":%d}`, have)
	recs, trailer, _, ok := h.postSweep("sweep-resume", resume)
	if !ok {
		return
	}
	if len(recs) != n-have || trailer.Done.Emitted != n-have {
		h.errf("sweep-resume: resumed stream emitted %d records (trailer %d), want %d",
			len(recs), trailer.Done.Emitted, n-have)
		return
	}
	seen := map[int]bool{}
	replayed := 0
	for i, r := range recs {
		if *r.Seq != have+i {
			h.errf("sweep-resume: record %d has seq %d, want %d", i, *r.Seq, have+i)
		}
		if seen[*r.Seq] {
			h.errf("sweep-resume: seq %d emitted twice", *r.Seq)
		}
		seen[*r.Seq] = true
		if r.Cache == "checkpoint" {
			replayed++
		}
		if len(r.Body) == 0 {
			h.errf("sweep-resume: seq %d has no body", *r.Seq)
		}
	}
	m1 := h.metrics("sweep-resume")
	if m1 == nil {
		return
	}
	solved := m1["sweep_points_solved"] - m0["sweep_points_solved"]
	if solved > n+1 {
		h.errf("sweep-resume: %d points solved across kill+resume, want at most %d (one in-flight recompute)",
			solved, n+1)
	}
	fmt.Printf("sweep-resume: killed after %d records, resume emitted %d (replayed %d from checkpoint), %d total solves for %d points\n",
		have, len(recs), replayed, solved, n)
}
