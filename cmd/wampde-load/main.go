// Command wampde-load is a deterministic closed-loop load generator for
// wampde-server. It drives three phases against a running server:
//
//  1. mix: a seeded shuffle of -requests requests drawn from -distinct
//     canonical solves (a VCO tuning-voltage sweep), issued closed-loop by
//     -concurrency workers. The phase measures throughput and latency
//     percentiles, verifies that responses for the same canonical request
//     are bitwise identical, and reports the cache/single-flight hit rate.
//  2. deadline: one deliberately over-budget request with a small
//     deadline_ms, which must come back 408 with the partial result.
//  3. burst: a simultaneous volley of distinct requests sized to overrun
//     the server's admission queue, which must produce 429 rejections.
//
// -sweep adds the batch-endpoint phases against /v1/sweep:
//
//  4. sweep-dedup: single solves and sweep points must dedup through the
//     same content-addressed cache in both directions, byte-for-byte.
//  5. sweep-amortization: a -sweep-points vctl grid sweep must cost at most
//     half the wall-clock of the same number of independent cold single
//     solves (estimated from a sequential cold sample).
//  6. sweep-resume: a sweep killed mid-stream and resumed with the received
//     line count must emit exactly the missing points, re-solving at most
//     one (the point in flight at the kill).
//
// -cluster switches to the cluster phases (see cluster.go): -cluster lists
// every live node's base URL and -cluster-phase picks mix (healthy-cluster
// byte-identity + global dedup + replication write-through), restart (warm
// disk-store replay against a restarted node), replay (byte-identity
// traffic with no solve gate — the mid-join background load), kill
// (zero-loss replay after a node death: byte-identical replicas, zero
// re-solves, zero 5xx), join (a joined node received exactly its
// consistent-hash share via handoff), breaker (a dead owner's circuit
// breaker opens, short-circuits, and the jittered-backoff retry paths
// fire), or down (legacy single-owner degradation). -wait-ready URL just
// polls /healthz for readiness and exits — the curl stand-in `ci.sh
// cluster` uses to sequence node boots.
//
// -check enforces the acceptance gates (hit rate ≥ 87%, zero 5xx in the
// mix, ≥1 rejection, ≥1 deadline exercised, and the sweep gates above);
// -bench additionally prints `go test -bench`-style result lines, so the
// output pipes straight into cmd/benchjson:
//
//	wampde-load -url http://127.0.0.1:8080 -bench | benchjson > BENCH.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type result struct {
	req     int // index into the distinct request set
	status  int
	xcache  string
	body    []byte
	latency time.Duration
}

type harness struct {
	url    string
	client *http.Client
	fail   int
}

func (h *harness) errf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wampde-load: "+format+"\n", args...)
	h.fail++
}

func (h *harness) post(body string) (status int, xcache string, data []byte, err error) {
	resp, err := h.client.Post(h.url+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Cache"), data, err
}

// sweepRequest is one point of the VCO tuning sweep: a short transient of
// the paper VCO with the control frozen at vctl. Distinct voltages are
// distinct canonical solves; equal voltages coalesce and cache.
func sweepRequest(vctl float64, tstop, h float64) string {
	return fmt.Sprintf(`{"circuit":"paper-vco","vctl_dc":%.4f,"analysis":"transient","options":{"tstop":%g,"h":%g}}`,
		vctl, tstop, h)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	url := flag.String("url", "", "server base URL (required), e.g. http://127.0.0.1:8080")
	requests := flag.Int("requests", 64, "total requests in the mix phase (0 skips)")
	distinct := flag.Int("distinct", 8, "distinct canonical solves in the mix")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers")
	seed := flag.Int64("seed", 1, "shuffle seed (the mix is deterministic given the seed)")
	burst := flag.Int("burst", 16, "simultaneous distinct requests in the burst phase (0 skips)")
	deadlineMS := flag.Int("deadline-ms", 100, "deadline of the over-budget request (0 skips the phase)")
	sweepPhases := flag.Bool("sweep", false, "run the /v1/sweep phases (dedup, amortization, resume)")
	sweepPoints := flag.Int("sweep-points", 200, "grid points in the sweep amortization phase")
	sweepGate := flag.Float64("sweep-gate", 0.5, "amortization gate: sweep per-point wall ≤ gate × a cold single (0 reports only; race-instrumented servers serialize the lanes, so gate against a plain build)")
	check := flag.Bool("check", false, "enforce the acceptance gates; non-zero exit on violation")
	bench := flag.Bool("bench", false, "print go test -bench style lines for cmd/benchjson")
	cluster := flag.String("cluster", "", "comma-separated base URLs of the live cluster nodes; runs the cluster phases instead of the single-node ones")
	clusterPhase := flag.String("cluster-phase", "mix", "cluster phase: mix, restart, replay, kill, join, breaker, or down")
	clusterBodies := flag.String("cluster-bodies", "", "file the mix phase saves canonical bodies to and the replay phases load from")
	clusterRestarted := flag.String("cluster-restarted", "", "base URL of the restarted node (restart phase)")
	clusterJoined := flag.String("cluster-joined", "", "base URL of the node that joined mid-traffic (join phase)")
	clusterRing := flag.String("cluster-ring", "", "comma-separated host:port of the full membership, dead nodes included (breaker phase)")
	clusterDead := flag.String("cluster-dead", "", "host:port of the dead owner whose breaker the phase exercises (breaker phase)")
	clusterReplication := flag.Int("cluster-replication", 2, "owners per hash R the cluster runs with (replication and join gates)")
	waitReadyURL := flag.String("wait-ready", "", "poll this base URL's /healthz until ready, then exit (no other phases run)")
	flag.Parse()

	if *waitReadyURL != "" {
		if err := waitReady(*waitReadyURL, time.Minute); err != nil {
			fmt.Fprintln(os.Stderr, "wampde-load:", err)
			os.Exit(1)
		}
		fmt.Println("ready")
		return
	}
	if *cluster != "" {
		h := &harness{client: &http.Client{Timeout: 5 * time.Minute}}
		runClusterPhase(h, clusterOpts{
			phase:       *clusterPhase,
			nodeList:    *cluster,
			bodiesPath:  *clusterBodies,
			restarted:   *clusterRestarted,
			joined:      *clusterJoined,
			ring:        *clusterRing,
			dead:        *clusterDead,
			replication: *clusterReplication,
			distinct:    *distinct,
			seed:        *seed,
			check:       *check,
			bench:       *bench,
		})
		if h.fail > 0 {
			os.Exit(1)
		}
		fmt.Println("ok")
		return
	}
	if *url == "" {
		fmt.Fprintln(os.Stderr, "wampde-load: -url is required")
		os.Exit(2)
	}
	h := &harness{url: strings.TrimRight(*url, "/"), client: &http.Client{Timeout: 5 * time.Minute}}

	// ---- Phase 1: seeded closed-loop mix over the tuning sweep.
	var (
		results                    []result
		lat                        []time.Duration
		elapsed                    time.Duration
		hits, misses, fiveXX, errs int
		hitRate                    float64
	)
	if *requests > 0 {
		reqs := make([]string, *distinct)
		for i := range reqs {
			reqs[i] = sweepRequest(1.5+0.05*float64(i), 2e-6, 1e-8)
		}
		order := make([]int, *requests)
		for i := range order {
			order[i] = i % *distinct
		}
		rand.New(rand.NewSource(*seed)).Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

		results = make([]result, len(order))
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(order) {
						return
					}
					t0 := time.Now()
					status, xcache, body, err := h.post(reqs[order[i]])
					if err != nil {
						status = -1
					}
					results[i] = result{req: order[i], status: status, xcache: xcache, body: body, latency: time.Since(t0)}
				}
			}()
		}
		wg.Wait()
		elapsed = time.Since(start)

		first := make(map[int][]byte)
		lat = make([]time.Duration, 0, len(results))
		for _, r := range results {
			lat = append(lat, r.latency)
			switch {
			case r.status == 200:
				if r.xcache == "hit" || r.xcache == "coalesced" {
					hits++
				} else {
					misses++
				}
				if prev, ok := first[r.req]; !ok {
					first[r.req] = r.body
				} else if !bytes.Equal(prev, r.body) {
					h.errf("request %d: response bytes differ between fresh and cached/coalesced replies", r.req)
				}
			case r.status >= 500:
				fiveXX++
			case r.status < 0:
				errs++
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		hitRate = float64(hits) / float64(len(results))
		fmt.Printf("mix: %d requests (%d distinct, concurrency %d, seed %d) in %v\n",
			len(results), *distinct, *concurrency, *seed, elapsed.Round(time.Millisecond))
		fmt.Printf("mix: throughput %.1f req/s, hit rate %.1f%% (%d hit/coalesced, %d solved), %d 5xx, %d transport errors\n",
			float64(len(results))/elapsed.Seconds(), 100*hitRate, hits, misses, fiveXX, errs)
		fmt.Printf("mix: latency p50 %v  p90 %v  p99 %v  max %v\n",
			percentile(lat, 0.50).Round(time.Microsecond), percentile(lat, 0.90).Round(time.Microsecond),
			percentile(lat, 0.99).Round(time.Microsecond), lat[len(lat)-1].Round(time.Microsecond))
	}

	// ---- Phase 2: one over-budget request must die at its deadline with a
	// partial result.
	deadlines := 0
	if *deadlineMS > 0 {
		req := fmt.Sprintf(`{"circuit":"paper-vco","analysis":"transient","options":{"tstop":5e-3,"h":1e-8},"deadline_ms":%d}`, *deadlineMS)
		status, _, body, err := h.post(req)
		if err != nil {
			h.errf("deadline request: %v", err)
		} else if status != 408 {
			h.errf("deadline request: status %d, want 408 (%.200s)", status, body)
		} else {
			deadlines++
			fmt.Printf("deadline: 408 after %dms budget, partial=%v\n", *deadlineMS, bytes.Contains(body, []byte(`"partial":true`)))
		}
	}

	// ---- Phase 3: a simultaneous burst of distinct solves must overrun the
	// admission queue. Retried a few times because an unloaded fast server
	// can drain between arrivals.
	rejected := 0
	if *burst > 0 {
		for attempt := 0; attempt < 3 && rejected == 0; attempt++ {
			var bwg sync.WaitGroup
			var rej, b5xx atomic.Int64
			release := make(chan struct{})
			for i := 0; i < *burst; i++ {
				// Distinct from the mix sweep (different tstop) and from each
				// other; a new voltage family per attempt defeats the cache.
				// The longer span (~10ms of solve) is what actually occupies
				// the workers long enough for the volley to overrun the queue
				// — at the mix phase's ~1ms solves the queue drains between
				// arrivals and nothing is rejected.
				req := sweepRequest(3.0+0.05*float64(attempt**burst+i), 2e-4, 1e-8)
				bwg.Add(1)
				go func() {
					defer bwg.Done()
					<-release
					status, _, _, err := h.post(req)
					if err != nil {
						return
					}
					if status == 429 {
						rej.Add(1)
					} else if status >= 500 {
						b5xx.Add(1)
					}
				}()
			}
			close(release)
			bwg.Wait()
			rejected = int(rej.Load())
			fiveXX += int(b5xx.Load())
			fmt.Printf("burst: %d simultaneous distinct requests, %d rejected with 429 (attempt %d)\n",
				*burst, rejected, attempt+1)
		}
	}

	// ---- Phases 4–6: the /v1/sweep batch endpoint.
	if *sweepPhases {
		runSweepPhases(h, *sweepPoints, *sweepGate, *check, *bench)
	}

	if *bench && len(results) > 0 {
		mean := elapsed.Nanoseconds() / int64(len(results))
		fmt.Printf("BenchmarkServeMix %d %d ns/op\n", len(results), mean)
		fmt.Printf("BenchmarkServeMixP50 1 %d ns/op\n", percentile(lat, 0.50).Nanoseconds())
		fmt.Printf("BenchmarkServeMixP99 1 %d ns/op\n", percentile(lat, 0.99).Nanoseconds())
	}

	if *check {
		if *requests > 0 {
			if hitRate < 0.87 {
				h.errf("check: hit rate %.1f%% < 87%%", 100*hitRate)
			}
			if errs > 0 {
				h.errf("check: %d transport errors", errs)
			}
		}
		if fiveXX > 0 {
			h.errf("check: %d non-injected 5xx responses", fiveXX)
		}
		if *burst > 0 && rejected == 0 {
			h.errf("check: burst produced no 429 admission rejections")
		}
		if *deadlineMS > 0 && deadlines == 0 {
			h.errf("check: no per-job deadline was exercised")
		}
	}
	if h.fail > 0 {
		os.Exit(1)
	}
	fmt.Println("ok")
}
