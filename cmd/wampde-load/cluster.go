package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// Cluster phases. -cluster takes the base URLs of every live node and drives
// the whole membership through one of three gated phases:
//
//   - mix: every distinct request is posted to every node, twice (the second
//     round shuffled). Gates: all 200, responses for the same request are
//     bitwise identical no matter which node served them, the cluster solved
//     each distinct hash exactly once (global single-flight through
//     forwarding), and forwarding actually happened. Saves the canonical
//     bodies to -cluster-bodies for the restart phase.
//   - restart: replays the saved bodies against the one restarted node
//     (-cluster-restarted). Gates: all 200 and byte-identical to the saved
//     bodies, zero new engine solves anywhere in the cluster (the restarted
//     node serves from its disk store or forwards to warm peers), and the
//     restarted node's boot showed disk activity (disk_hits ≥ 1,
//     prewarm_skipped ≥ 1 — its prewarm set came back from disk).
//   - down: -cluster lists only the surviving nodes. Fresh distinct requests
//     are spread across them. Gates: all 200 with zero 5xx (the dead owner's
//     share degrades to local solves, it does not error), and at least one
//     forward fallback was taken.

// waitReady polls url/healthz until the body reports `"ready":true` (prewarm
// finished), the stand-in for curl in `ci.sh cluster`.
func waitReady(url string, timeout time.Duration) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get(strings.TrimRight(url, "/") + "/healthz")
		if err == nil {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == 200 && bytes.Contains(body, []byte(`"ready":true`)) {
				return nil
			}
			last = fmt.Errorf("status %d (%.200s)", resp.StatusCode, body)
		} else {
			last = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%s not ready within %v: %v", url, timeout, last)
}

// postTo is h.post against an explicit node instead of the fixed -url.
func (h *harness) postTo(base, body string) (status int, xcache string, data []byte, err error) {
	resp, err := h.client.Post(strings.TrimRight(base, "/")+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Cache"), data, err
}

func (h *harness) metricsAt(base, phase string) map[string]int64 {
	resp, err := h.client.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		h.errf("%s: metrics %s: %v", phase, base, err)
		return nil
	}
	defer resp.Body.Close()
	m := map[string]int64{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		h.errf("%s: metrics %s decode: %v", phase, base, err)
		return nil
	}
	return m
}

// clusterMetrics snapshots every node's counters, index-aligned with nodes.
func (h *harness) clusterMetrics(nodes []string, phase string) []map[string]int64 {
	out := make([]map[string]int64, len(nodes))
	for i, n := range nodes {
		if out[i] = h.metricsAt(n, phase); out[i] == nil {
			return nil
		}
	}
	return out
}

// sumDelta totals key across the cluster between two snapshots.
func sumDelta(m0, m1 []map[string]int64, key string) int64 {
	var d int64
	for i := range m1 {
		d += m1[i][key] - m0[i][key]
	}
	return d
}

// clusterBody is one saved canonical response: the request that produced it
// and the exact bytes every node must keep returning for it.
type clusterBody struct {
	Req  string          `json:"req"`
	Body json.RawMessage `json:"body"`
}

// runClusterMix is the healthy-cluster phase: D distinct requests, each
// posted to every node twice (second round in seeded-shuffled order).
func runClusterMix(h *harness, nodes []string, bodiesPath string, distinct int, seed int64, check, bench bool) {
	reqs := make([]string, distinct)
	for i := range reqs {
		reqs[i] = sweepRequest(1.5+0.05*float64(i), 2e-6, 1e-8)
	}
	m0 := h.clusterMetrics(nodes, "cluster-mix")
	if m0 == nil {
		return
	}

	// Round 1 in order, round 2 shuffled: the second visit to any (request,
	// node) pair must be served from a cache tier somewhere, and all replies
	// for a request must be the same bytes regardless of the serving node.
	type post struct{ req, node int }
	var posts []post
	for i := range reqs {
		for n := range nodes {
			posts = append(posts, post{i, n})
		}
	}
	round2 := append([]post(nil), posts...)
	rand.New(rand.NewSource(seed)).Shuffle(len(round2), func(i, j int) { round2[i], round2[j] = round2[j], round2[i] })
	posts = append(posts, round2...)

	canonical := make([][]byte, distinct)
	var lat []time.Duration
	bad := 0
	t0 := time.Now()
	for _, p := range posts {
		pt0 := time.Now()
		status, _, body, err := h.postTo(nodes[p.node], reqs[p.req])
		lat = append(lat, time.Since(pt0))
		if err != nil || status != 200 {
			h.errf("cluster-mix: req %d via node %d: status %d err %v", p.req, p.node, status, err)
			bad++
			continue
		}
		if canonical[p.req] == nil {
			canonical[p.req] = body
		} else if !bytes.Equal(canonical[p.req], body) {
			h.errf("cluster-mix: req %d: node %d returned different bytes than the first reply", p.req, p.node)
			bad++
		}
	}
	elapsed := time.Since(t0)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	m1 := h.clusterMetrics(nodes, "cluster-mix")
	if m1 == nil {
		return
	}
	solves := sumDelta(m0, m1, "solves")
	fwdOK := sumDelta(m0, m1, "forward_ok")
	fwdIn := sumDelta(m0, m1, "forwarded_in")
	fwdNS := sumDelta(m0, m1, "forward_ns")
	fmt.Printf("cluster-mix: %d posts (%d distinct x %d nodes x 2 rounds) in %v — %d engine solves, %d forwards served, %d forwarded-in\n",
		len(posts), distinct, len(nodes), elapsed.Round(time.Millisecond), solves, fwdOK, fwdIn)
	fmt.Printf("cluster-mix: latency p50 %v  p99 %v  max %v\n",
		percentile(lat, 0.50).Round(time.Microsecond), percentile(lat, 0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))

	if check {
		if bad > 0 {
			h.errf("cluster-mix: %d failed or divergent posts", bad)
		}
		if solves != int64(distinct) {
			h.errf("cluster-mix: cluster solved %d times for %d distinct hashes, want exactly one solve per hash", solves, distinct)
		}
		if fwdOK < 1 {
			h.errf("cluster-mix: no successful forwards — cross-node ownership never exercised")
		}
		if fwdIn < 1 {
			h.errf("cluster-mix: no node received a forwarded request")
		}
	}
	if bench {
		fmt.Printf("BenchmarkClusterMix %d %d ns/op\n", len(posts), elapsed.Nanoseconds()/int64(len(posts)))
		fmt.Printf("BenchmarkClusterMixP99 1 %d ns/op\n", percentile(lat, 0.99).Nanoseconds())
		if fwdOK > 0 {
			fmt.Printf("BenchmarkClusterForward %d %d ns/op\n", fwdOK, fwdNS/fwdOK)
		}
	}

	if bodiesPath != "" {
		saved := make([]clusterBody, 0, distinct)
		for i, b := range canonical {
			if b != nil {
				saved = append(saved, clusterBody{Req: reqs[i], Body: b})
			}
		}
		data, err := json.Marshal(saved)
		if err == nil {
			err = os.WriteFile(bodiesPath, data, 0o644)
		}
		if err != nil {
			h.errf("cluster-mix: saving bodies to %s: %v", bodiesPath, err)
		}
	}
}

// runClusterRestart replays the mix phase's saved bodies against a node that
// was killed and restarted onto its disk store.
func runClusterRestart(h *harness, nodes []string, restarted, bodiesPath string, check bool) {
	if restarted == "" || bodiesPath == "" {
		h.errf("cluster-restart: -cluster-restarted and -cluster-bodies are required")
		return
	}
	data, err := os.ReadFile(bodiesPath)
	if err != nil {
		h.errf("cluster-restart: %v", err)
		return
	}
	var saved []clusterBody
	if err := json.Unmarshal(data, &saved); err != nil {
		h.errf("cluster-restart: decoding %s: %v", bodiesPath, err)
		return
	}
	if len(saved) == 0 {
		h.errf("cluster-restart: %s holds no bodies", bodiesPath)
		return
	}

	m0 := h.clusterMetrics(nodes, "cluster-restart")
	if m0 == nil {
		return
	}
	bad := 0
	for i, s := range saved {
		status, _, body, err := h.postTo(restarted, s.Req)
		if err != nil || status != 200 {
			h.errf("cluster-restart: replay %d: status %d err %v", i, status, err)
			bad++
			continue
		}
		if !bytes.Equal(body, s.Body) {
			h.errf("cluster-restart: replay %d: bytes differ from the pre-restart reply", i)
			bad++
		}
	}
	m1 := h.clusterMetrics(nodes, "cluster-restart")
	if m1 == nil {
		return
	}
	solves := sumDelta(m0, m1, "solves")

	// Absolute counters on the restarted node: its boot prewarm must have
	// found the named circuits already on disk (disk_hits counts the loads,
	// prewarm_skipped the entries it therefore did not re-solve).
	var ri = -1
	for i, n := range nodes {
		if strings.TrimRight(n, "/") == strings.TrimRight(restarted, "/") {
			ri = i
		}
	}
	var diskHits, prewarmSkipped int64 = -1, -1
	if ri >= 0 {
		diskHits, prewarmSkipped = m1[ri]["disk_hits"], m1[ri]["prewarm_skipped"]
	} else if m := h.metricsAt(restarted, "cluster-restart"); m != nil {
		diskHits, prewarmSkipped = m["disk_hits"], m["prewarm_skipped"]
	}
	fmt.Printf("cluster-restart: replayed %d bodies against the restarted node — %d new solves cluster-wide, restarted disk_hits=%d prewarm_skipped=%d\n",
		len(saved), solves, diskHits, prewarmSkipped)

	if check {
		if bad > 0 {
			h.errf("cluster-restart: %d failed or divergent replays", bad)
		}
		if solves != 0 {
			h.errf("cluster-restart: %d engine solves during replay, want 0 (warm tiers must carry the whole set)", solves)
		}
		if diskHits < 1 {
			h.errf("cluster-restart: restarted node disk_hits=%d, want ≥1 (disk store never served)", diskHits)
		}
		if prewarmSkipped < 1 {
			h.errf("cluster-restart: restarted node prewarm_skipped=%d, want ≥1 (prewarm re-solved a warm store)", prewarmSkipped)
		}
	}
}

// runClusterDown drives fresh load with one owner dead: -cluster lists only
// the survivors. Requests whose hash the dead node owns must degrade to
// local solves (forward fallback), never to errors.
func runClusterDown(h *harness, nodes []string, distinct int, check bool) {
	m0 := h.clusterMetrics(nodes, "cluster-down")
	if m0 == nil {
		return
	}
	bad, fiveXX, posted := 0, 0, 0
	var fallbacks int64
	// A fresh voltage family per attempt; with ~1/3 of hash space owned by
	// the dead node one family all but guarantees a fallback, the retry
	// covers the astronomically unlucky draw.
	for attempt := 0; attempt < 3; attempt++ {
		for i := 0; i < distinct; i++ {
			req := sweepRequest(5.0+0.05*float64(attempt*distinct+i), 2e-6, 1e-8)
			status, _, _, err := h.postTo(nodes[i%len(nodes)], req)
			posted++
			if err != nil || status != 200 {
				h.errf("cluster-down: req %d: status %d err %v", attempt*distinct+i, status, err)
				bad++
			}
			if status >= 500 {
				fiveXX++
			}
		}
		m1 := h.clusterMetrics(nodes, "cluster-down")
		if m1 == nil {
			return
		}
		if fallbacks = sumDelta(m0, m1, "forward_fallbacks"); fallbacks >= 1 {
			break
		}
	}
	fmt.Printf("cluster-down: %d fresh requests against %d survivors — %d forward fallbacks, %d 5xx\n",
		posted, len(nodes), fallbacks, fiveXX)

	if check {
		if bad > 0 {
			h.errf("cluster-down: %d failed posts with a node down", bad)
		}
		if fiveXX > 0 {
			h.errf("cluster-down: %d 5xx responses — degradation must not surface errors", fiveXX)
		}
		if fallbacks < 1 {
			h.errf("cluster-down: no forward fallbacks recorded — the dead owner's share was never exercised")
		}
	}
}

// runClusterPhase dispatches -cluster-phase.
func runClusterPhase(h *harness, phase, nodeList, bodiesPath, restarted string, distinct int, seed int64, check, bench bool) {
	var nodes []string
	for _, n := range strings.Split(nodeList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		h.errf("cluster: -cluster lists no nodes")
		return
	}
	switch phase {
	case "mix":
		runClusterMix(h, nodes, bodiesPath, distinct, seed, check, bench)
	case "restart":
		runClusterRestart(h, nodes, restarted, bodiesPath, check)
	case "down":
		runClusterDown(h, nodes, distinct, check)
	default:
		h.errf("cluster: unknown -cluster-phase %q (want mix, restart, or down)", phase)
	}
}
