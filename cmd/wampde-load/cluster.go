package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/serve"
)

// Cluster phases. -cluster takes the base URLs of every live node and drives
// the whole membership through one gated phase:
//
//   - mix: every distinct request is posted to every node, twice (the second
//     round shuffled). Gates: all 200, responses for the same request are
//     bitwise identical no matter which node served them, the cluster solved
//     each distinct hash exactly once (global single-flight through
//     forwarding), forwarding actually happened, and — with -cluster-
//     replication R > 1 — every fresh solve was written through to its
//     R-1 replica owners (repl_sent/repl_received match exactly, zero
//     failures, queue drained). Saves the canonical bodies to
//     -cluster-bodies for the replay-style phases.
//   - restart: replays the saved bodies against the one restarted node
//     (-cluster-restarted). Gates: all 200 and byte-identical to the saved
//     bodies, zero new engine solves anywhere in the cluster (the restarted
//     node serves from its disk store or forwards to warm peers), and the
//     restarted node's boot showed disk activity (disk_hits ≥ 1,
//     prewarm_skipped ≥ 1 — its prewarm set came back from disk).
//   - replay: replays the saved bodies against every listed node, gating
//     only 200 + byte-identity. No solve accounting — this is the
//     mid-join background traffic, where a request may race the handoff
//     and legally re-solve on the joining node (≤ R solves per hash).
//   - kill: the zero-loss gate after a node death. Replays the saved
//     bodies against the survivors; every reply must be 200 and
//     byte-identical with zero new engine solves cluster-wide and zero
//     5xx — the dead owner's share is served from its replicas, not
//     recomputed.
//   - join: gates the handoff a joined node (-cluster-joined) received.
//     Waits for every node's membership view to converge on the grown
//     cluster, recomputes the joiner's consistent-hash share of the known
//     key universe (prewarm set + saved mix bodies) with the same ring
//     the servers use, and checks the joiner received only that share
//     (handoff_keys_received ≤ share ≤ received + its mid-traffic
//     solves), rejected nothing, and that the moved-key count respects
//     the rebalance bound pinned in shard_test.go.
//   - breaker: exercises failure detection against a dead owner
//     (-cluster-dead, with -cluster-ring the full membership). Posts
//     fresh requests whose primary is the dead node through one survivor;
//     gates all 200 with zero 5xx while breaker_opens ≥ 1,
//     breaker_short_circuits ≥ 1 and the jittered-backoff retry paths
//     (forward_retries + repl_retries) fired.
//   - down: -cluster lists only the surviving nodes. Fresh distinct requests
//     are spread across them. Gates: all 200 with zero 5xx (the dead owner's
//     share degrades to local solves, it does not error), and at least one
//     forward fallback was taken. The legacy single-owner (R = 1) shape of
//     the kill phase.

// waitReady polls url/healthz until the body reports `"ready":true` (prewarm
// finished), the stand-in for curl in `ci.sh cluster`.
func waitReady(url string, timeout time.Duration) error {
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get(strings.TrimRight(url, "/") + "/healthz")
		if err == nil {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == 200 && bytes.Contains(body, []byte(`"ready":true`)) {
				return nil
			}
			last = fmt.Errorf("status %d (%.200s)", resp.StatusCode, body)
		} else {
			last = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%s not ready within %v: %v", url, timeout, last)
}

// postTo is h.post against an explicit node instead of the fixed -url.
func (h *harness) postTo(base, body string) (status int, xcache string, data []byte, err error) {
	resp, err := h.client.Post(strings.TrimRight(base, "/")+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Cache"), data, err
}

func (h *harness) metricsAt(base, phase string) map[string]int64 {
	resp, err := h.client.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		h.errf("%s: metrics %s: %v", phase, base, err)
		return nil
	}
	defer resp.Body.Close()
	m := map[string]int64{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		h.errf("%s: metrics %s decode: %v", phase, base, err)
		return nil
	}
	return m
}

// clusterMetrics snapshots every node's counters, index-aligned with nodes.
func (h *harness) clusterMetrics(nodes []string, phase string) []map[string]int64 {
	out := make([]map[string]int64, len(nodes))
	for i, n := range nodes {
		if out[i] = h.metricsAt(n, phase); out[i] == nil {
			return nil
		}
	}
	return out
}

// sumDelta totals key across the cluster between two snapshots.
func sumDelta(m0, m1 []map[string]int64, key string) int64 {
	var d int64
	for i := range m1 {
		d += m1[i][key] - m0[i][key]
	}
	return d
}

// sumAbs totals key across one snapshot.
func sumAbs(m []map[string]int64, key string) int64 {
	var d int64
	for i := range m {
		d += m[i][key]
	}
	return d
}

// waitReplDrained polls every node until its replication queue is empty and
// fully accounted (enqueued == sent + failed) — the quiescence point after
// which replica stores and the repl_* counters are stable.
func (h *harness) waitReplDrained(nodes []string, phase string, timeout time.Duration) []map[string]int64 {
	deadline := time.Now().Add(timeout)
	for {
		m := h.clusterMetrics(nodes, phase)
		if m == nil {
			return nil
		}
		drained := true
		for i := range m {
			if m[i]["repl_queue_depth"] != 0 || m[i]["repl_enqueued"] != m[i]["repl_sent"]+m[i]["repl_failed"] {
				drained = false
			}
		}
		if drained {
			return m
		}
		if time.Now().After(deadline) {
			h.errf("%s: replication queue did not drain within %v", phase, timeout)
			return m
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// hashOfReq canonicalizes a request body exactly the way the server does
// and returns its content hash — what lets the harness recompute ring
// ownership of the traffic it generated.
func hashOfReq(body string) (string, error) {
	req, err := serve.DecodeRequest(strings.NewReader(body))
	if err != nil {
		return "", err
	}
	c, err := req.Canonicalize()
	if err != nil {
		return "", err
	}
	return c.Hash(), nil
}

// nodeAddr strips the scheme from a base URL, yielding the advertised
// host:port the ring hashes.
func nodeAddr(base string) string {
	base = strings.TrimRight(base, "/")
	base = strings.TrimPrefix(base, "http://")
	return strings.TrimPrefix(base, "https://")
}

// clusterBody is one saved canonical response: the request that produced it
// and the exact bytes every node must keep returning for it.
type clusterBody struct {
	Req  string          `json:"req"`
	Body json.RawMessage `json:"body"`
}

// runClusterMix is the healthy-cluster phase: D distinct requests, each
// posted to every node twice (second round in seeded-shuffled order).
func runClusterMix(h *harness, nodes []string, bodiesPath string, distinct int, seed int64, replication int, check, bench bool) {
	reqs := make([]string, distinct)
	for i := range reqs {
		reqs[i] = sweepRequest(1.5+0.05*float64(i), 2e-6, 1e-8)
	}
	m0 := h.clusterMetrics(nodes, "cluster-mix")
	if m0 == nil {
		return
	}

	// Round 1 in order, round 2 shuffled: the second visit to any (request,
	// node) pair must be served from a cache tier somewhere, and all replies
	// for a request must be the same bytes regardless of the serving node.
	type post struct{ req, node int }
	var posts []post
	for i := range reqs {
		for n := range nodes {
			posts = append(posts, post{i, n})
		}
	}
	round2 := append([]post(nil), posts...)
	rand.New(rand.NewSource(seed)).Shuffle(len(round2), func(i, j int) { round2[i], round2[j] = round2[j], round2[i] })
	posts = append(posts, round2...)

	canonical := make([][]byte, distinct)
	var lat []time.Duration
	bad := 0
	t0 := time.Now()
	for _, p := range posts {
		pt0 := time.Now()
		status, _, body, err := h.postTo(nodes[p.node], reqs[p.req])
		lat = append(lat, time.Since(pt0))
		if err != nil || status != 200 {
			h.errf("cluster-mix: req %d via node %d: status %d err %v", p.req, p.node, status, err)
			bad++
			continue
		}
		if canonical[p.req] == nil {
			canonical[p.req] = body
		} else if !bytes.Equal(canonical[p.req], body) {
			h.errf("cluster-mix: req %d: node %d returned different bytes than the first reply", p.req, p.node)
			bad++
		}
	}
	elapsed := time.Since(t0)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })

	// Quiesce the async write-through before reading counters: replica
	// stores are only stable once every queue drained.
	m1 := h.waitReplDrained(nodes, "cluster-mix", 30*time.Second)
	if m1 == nil {
		return
	}
	solves := sumDelta(m0, m1, "solves")
	fwdOK := sumDelta(m0, m1, "forward_ok")
	fwdIn := sumDelta(m0, m1, "forwarded_in")
	fwdNS := sumDelta(m0, m1, "forward_ns")
	replSent := sumDelta(m0, m1, "repl_sent")
	replReceived := sumDelta(m0, m1, "repl_received")
	fmt.Printf("cluster-mix: %d posts (%d distinct x %d nodes x 2 rounds) in %v — %d engine solves, %d forwards served, %d forwarded-in, %d replicas delivered\n",
		len(posts), distinct, len(nodes), elapsed.Round(time.Millisecond), solves, fwdOK, fwdIn, replReceived)
	fmt.Printf("cluster-mix: latency p50 %v  p99 %v  max %v\n",
		percentile(lat, 0.50).Round(time.Microsecond), percentile(lat, 0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))

	if check {
		if bad > 0 {
			h.errf("cluster-mix: %d failed or divergent posts", bad)
		}
		if solves != int64(distinct) {
			h.errf("cluster-mix: cluster solved %d times for %d distinct hashes, want exactly one solve per hash", solves, distinct)
		}
		if fwdOK < 1 {
			h.errf("cluster-mix: no successful forwards — cross-node ownership never exercised")
		}
		if fwdIn < 1 {
			h.errf("cluster-mix: no node received a forwarded request")
		}
		if replication > 1 {
			// Each fresh solve writes through to its R-1 replica owners; on a
			// healthy cluster every push lands exactly once.
			want := int64(distinct * (replication - 1))
			if replSent != want {
				h.errf("cluster-mix: repl_sent = %d, want %d (%d solves x %d replicas each)", replSent, want, distinct, replication-1)
			}
			if replReceived != want {
				h.errf("cluster-mix: repl_received = %d, want %d — a write-through went missing", replReceived, want)
			}
			if failed := sumDelta(m0, m1, "repl_failed"); failed != 0 {
				h.errf("cluster-mix: repl_failed = %d on a healthy cluster, want 0", failed)
			}
			if dropped := sumDelta(m0, m1, "repl_queue_full"); dropped != 0 {
				h.errf("cluster-mix: repl_queue_full = %d, want 0 (queue sized below the mix)", dropped)
			}
		}
	}
	if bench {
		fmt.Printf("BenchmarkClusterMix %d %d ns/op\n", len(posts), elapsed.Nanoseconds()/int64(len(posts)))
		fmt.Printf("BenchmarkClusterMixP99 1 %d ns/op\n", percentile(lat, 0.99).Nanoseconds())
		if fwdOK > 0 {
			fmt.Printf("BenchmarkClusterForward %d %d ns/op\n", fwdOK, fwdNS/fwdOK)
		}
	}

	if bodiesPath != "" {
		saved := make([]clusterBody, 0, distinct)
		for i, b := range canonical {
			if b != nil {
				saved = append(saved, clusterBody{Req: reqs[i], Body: b})
			}
		}
		data, err := json.Marshal(saved)
		if err == nil {
			err = os.WriteFile(bodiesPath, data, 0o644)
		}
		if err != nil {
			h.errf("cluster-mix: saving bodies to %s: %v", bodiesPath, err)
		}
	}
}

// runClusterRestart replays the mix phase's saved bodies against a node that
// was killed and restarted onto its disk store.
func runClusterRestart(h *harness, nodes []string, restarted, bodiesPath string, check bool) {
	if restarted == "" || bodiesPath == "" {
		h.errf("cluster-restart: -cluster-restarted and -cluster-bodies are required")
		return
	}
	data, err := os.ReadFile(bodiesPath)
	if err != nil {
		h.errf("cluster-restart: %v", err)
		return
	}
	var saved []clusterBody
	if err := json.Unmarshal(data, &saved); err != nil {
		h.errf("cluster-restart: decoding %s: %v", bodiesPath, err)
		return
	}
	if len(saved) == 0 {
		h.errf("cluster-restart: %s holds no bodies", bodiesPath)
		return
	}

	m0 := h.clusterMetrics(nodes, "cluster-restart")
	if m0 == nil {
		return
	}
	bad := 0
	for i, s := range saved {
		status, _, body, err := h.postTo(restarted, s.Req)
		if err != nil || status != 200 {
			h.errf("cluster-restart: replay %d: status %d err %v", i, status, err)
			bad++
			continue
		}
		if !bytes.Equal(body, s.Body) {
			h.errf("cluster-restart: replay %d: bytes differ from the pre-restart reply", i)
			bad++
		}
	}
	m1 := h.clusterMetrics(nodes, "cluster-restart")
	if m1 == nil {
		return
	}
	solves := sumDelta(m0, m1, "solves")

	// Absolute counters on the restarted node: its boot prewarm must have
	// found the named circuits already on disk (disk_hits counts the loads,
	// prewarm_skipped the entries it therefore did not re-solve).
	var ri = -1
	for i, n := range nodes {
		if strings.TrimRight(n, "/") == strings.TrimRight(restarted, "/") {
			ri = i
		}
	}
	var diskHits, prewarmSkipped int64 = -1, -1
	if ri >= 0 {
		diskHits, prewarmSkipped = m1[ri]["disk_hits"], m1[ri]["prewarm_skipped"]
	} else if m := h.metricsAt(restarted, "cluster-restart"); m != nil {
		diskHits, prewarmSkipped = m["disk_hits"], m["prewarm_skipped"]
	}
	fmt.Printf("cluster-restart: replayed %d bodies against the restarted node — %d new solves cluster-wide, restarted disk_hits=%d prewarm_skipped=%d\n",
		len(saved), solves, diskHits, prewarmSkipped)

	if check {
		if bad > 0 {
			h.errf("cluster-restart: %d failed or divergent replays", bad)
		}
		if solves != 0 {
			h.errf("cluster-restart: %d engine solves during replay, want 0 (warm tiers must carry the whole set)", solves)
		}
		if diskHits < 1 {
			h.errf("cluster-restart: restarted node disk_hits=%d, want ≥1 (disk store never served)", diskHits)
		}
		if prewarmSkipped < 1 {
			h.errf("cluster-restart: restarted node prewarm_skipped=%d, want ≥1 (prewarm re-solved a warm store)", prewarmSkipped)
		}
	}
}

// loadBodies reads the canonical bodies the mix phase saved.
func (h *harness) loadBodies(path, phase string) []clusterBody {
	if path == "" {
		h.errf("%s: -cluster-bodies is required", phase)
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		h.errf("%s: %v", phase, err)
		return nil
	}
	var saved []clusterBody
	if err := json.Unmarshal(data, &saved); err != nil {
		h.errf("%s: decoding %s: %v", phase, path, err)
		return nil
	}
	if len(saved) == 0 {
		h.errf("%s: %s holds no bodies", phase, path)
	}
	return saved
}

// replayBodies posts every saved body to every node once, counting replies
// that are not 200 or differ from the saved bytes.
func (h *harness) replayBodies(nodes []string, saved []clusterBody, phase string) (bad, fiveXX, posted int) {
	for _, node := range nodes {
		for i, s := range saved {
			status, _, body, err := h.postTo(node, s.Req)
			posted++
			if err != nil || status != 200 {
				h.errf("%s: replay %d via %s: status %d err %v", phase, i, node, status, err)
				bad++
				if status >= 500 {
					fiveXX++
				}
				continue
			}
			if !bytes.Equal(body, s.Body) {
				h.errf("%s: replay %d via %s: bytes differ from the pre-kill reply", phase, i, node)
				bad++
			}
		}
	}
	return bad, fiveXX, posted
}

// runClusterReplay is byte-identity traffic with no solve accounting: the
// background load `ci.sh cluster` keeps flowing while a node joins. A
// replayed request may race the handoff and re-solve on the joiner — legal
// (≤ R solves per hash over the run) — so only availability and bytes are
// gated here.
func runClusterReplay(h *harness, nodes []string, bodiesPath string, check bool) {
	saved := h.loadBodies(bodiesPath, "cluster-replay")
	if len(saved) == 0 {
		return
	}
	bad, fiveXX, posted := h.replayBodies(nodes, saved, "cluster-replay")
	fmt.Printf("cluster-replay: %d posts (%d bodies x %d nodes) — %d failed, %d 5xx\n",
		posted, len(saved), len(nodes), bad, fiveXX)
	if check && bad > 0 {
		h.errf("cluster-replay: %d failed or divergent posts", bad)
	}
}

// runClusterKill is the zero-loss gate after a node death: every body the
// cluster ever served must still come back 200 and byte-identical from the
// survivors, with zero new engine solves anywhere (the dead owner's share
// is served from its replicas, not recomputed) and zero 5xx.
func runClusterKill(h *harness, nodes []string, bodiesPath string, check bool) {
	saved := h.loadBodies(bodiesPath, "cluster-kill")
	if len(saved) == 0 {
		return
	}
	m0 := h.clusterMetrics(nodes, "cluster-kill")
	if m0 == nil {
		return
	}
	bad, fiveXX, posted := h.replayBodies(nodes, saved, "cluster-kill")
	m1 := h.clusterMetrics(nodes, "cluster-kill")
	if m1 == nil {
		return
	}
	solves := sumDelta(m0, m1, "solves")
	fmt.Printf("cluster-kill: %d replays across %d survivors — %d new solves, %d failed, %d 5xx\n",
		posted, len(nodes), solves, bad, fiveXX)
	if check {
		if bad > 0 {
			h.errf("cluster-kill: %d failed or divergent replays with a node dead", bad)
		}
		if fiveXX > 0 {
			h.errf("cluster-kill: %d 5xx — a node death surfaced as an error", fiveXX)
		}
		if solves != 0 {
			h.errf("cluster-kill: %d engine re-solves, want 0 (cached bytes were lost with the node)", solves)
		}
	}
}

// runClusterJoin gates what a joined node took over. The harness knows the
// whole key universe it created (the prewarm set plus the saved mix
// bodies), so it recomputes the joiner's consistent-hash share with the
// same ring the servers build — over the full membership including the
// joiner — and compares it against the joiner's handoff counters: the
// joiner must have received its share and nothing else, rejecting no
// record, and the moved-key count must respect the rebalance bound pinned
// in shard_test.go (an owner set changes only by inserting the joiner).
func runClusterJoin(h *harness, nodes []string, joined, bodiesPath string, replication int, check bool) {
	if joined == "" {
		h.errf("cluster-join: -cluster-joined is required")
		return
	}
	saved := h.loadBodies(bodiesPath, "cluster-join")
	if len(saved) == 0 {
		return
	}
	all := append(append([]string(nil), nodes...), joined)

	// Membership convergence: every node, old and new, must report the
	// grown cluster before ownership is checked.
	deadline := time.Now().Add(30 * time.Second)
	for {
		m := h.clusterMetrics(all, "cluster-join")
		if m == nil {
			return
		}
		converged := true
		for i := range m {
			if m[i]["member_nodes"] != int64(len(all)) {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			h.errf("cluster-join: membership did not converge on %d nodes within 30s", len(all))
			return
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The key universe this run created, and the joiner's share of it under
	// the post-join ring.
	universe := append([]string(nil), serve.PrewarmHashes()...)
	for _, s := range saved {
		hash, err := hashOfReq(s.Req)
		if err != nil {
			h.errf("cluster-join: hashing saved request: %v", err)
			return
		}
		universe = append(universe, hash)
	}
	seen := map[string]bool{}
	ringNodes := make([]string, 0, len(all))
	for _, n := range all {
		ringNodes = append(ringNodes, nodeAddr(n))
	}
	joinedAddr := nodeAddr(joined)
	before := serve.NewRing(ringNodes[:len(ringNodes)-1], 0)
	after := serve.NewRing(ringNodes, 0)
	share, changed := 0, 0
	for _, hash := range universe {
		if seen[hash] {
			continue
		}
		seen[hash] = true
		owners := after.Owners(hash, replication)
		hasJoiner := false
		for _, o := range owners {
			if o == joinedAddr {
				hasJoiner = true
			}
		}
		if hasJoiner {
			share++
		}
		old := before.Owners(hash, replication)
		same := len(old) == len(owners)
		for i := 0; same && i < len(owners); i++ {
			same = owners[i] == old[i]
		}
		if !same {
			changed++
			if !hasJoiner && check {
				h.errf("cluster-join: key %s changed owners without the joiner — unrelated churn", hash)
			}
		}
	}
	total := len(seen)

	jm := h.metricsAt(joined, "cluster-join")
	if jm == nil {
		return
	}
	senders := h.clusterMetrics(nodes, "cluster-join")
	if senders == nil {
		return
	}
	received := jm["handoff_keys_received"]
	joinerSolves := jm["solves"]
	streams, sentKeys, sentBytes := sumAbs(senders, "handoff_pulls"), sumAbs(senders, "handoff_keys_sent"), sumAbs(senders, "handoff_bytes")
	fmt.Printf("cluster-join: %d stored keys, joiner share %d (owner sets changed %d) — received %d via handoff (%d streams, %d records, %d bytes sent), %d mid-traffic solves, %d rejected\n",
		total, share, changed, received, streams, sentKeys, sentBytes, joinerSolves, jm["handoff_rejected"])

	if check {
		if received < 1 {
			h.errf("cluster-join: joiner received no handoff keys")
		}
		if streams < 1 {
			h.errf("cluster-join: no member served a handoff stream")
		}
		if sentKeys < received || sentBytes < 1 {
			h.errf("cluster-join: senders streamed %d records / %d bytes for %d received — the stream did not carry the share", sentKeys, sentBytes, received)
		}
		if jm["handoff_rejected"] != 0 {
			h.errf("cluster-join: joiner rejected %d handoff records", jm["handoff_rejected"])
		}
		// Only its share: every received key is one the new ring owes it,
		// and everything owed arrived — by stream, or (if a mid-traffic
		// request raced the handoff) by the ≤ R-bounded local solve.
		if received > int64(share) {
			h.errf("cluster-join: joiner received %d keys for a %d-key share — it took keys it does not own", received, share)
		}
		if received+joinerSolves < int64(share) {
			h.errf("cluster-join: joiner holds %d of its %d-key share (received %d + solved %d) — handoff lost keys", received+joinerSolves, share, received, joinerSolves)
		}
		// The rebalance bound from shard_test.go: a join may move at most
		// ~2x the joiner's fair share of owner slots, never the whole map.
		fair := float64(replication) / float64(len(all))
		if frac := float64(changed) / float64(total); frac > 2*fair && changed > replication {
			h.errf("cluster-join: join moved %.0f%% of owner sets (fair share %.0f%%) — rebalance bound broken", 100*frac, 100*fair)
		}
		if changed >= total {
			h.errf("cluster-join: every owner set changed — consistent hashing is rehashing everything")
		}
		for i, m := range h.clusterMetrics(all, "cluster-join") {
			if m["member_epoch"] < 2 {
				h.errf("cluster-join: node %d member_epoch = %d, want ≥ 2 after a join", i, m["member_epoch"])
			}
		}
	}
}

// runClusterBreaker exercises failure detection: fresh requests whose
// primary owner is the dead node, posted through one survivor. Every reply
// must be a 200 (the replica owner solves; nothing errors) while the dead
// peer's circuit breaker opens, short-circuits later attempts, and the
// jittered-backoff retry paths fire — on forwards while the breaker
// counted down, and on the write-through replication the solver still owes
// the dead owner. The exact counter choreography is pinned by the in-process
// suite (breaker_test.go, forward_test.go); this phase proves the same
// machinery fires over real sockets.
func runClusterBreaker(h *harness, nodes []string, ring []string, dead string, distinct int, check bool) {
	if dead == "" || len(ring) == 0 {
		h.errf("cluster-breaker: -cluster-ring and -cluster-dead are required")
		return
	}
	r := serve.NewRing(ring, 0)
	var reqs []string
	for i := 0; len(reqs) < distinct && i < 4096; i++ {
		req := sweepRequest(7.0+0.05*float64(i), 2e-6, 1e-8)
		hash, err := hashOfReq(req)
		if err != nil {
			h.errf("cluster-breaker: %v", err)
			return
		}
		if r.Owner(hash) == dead {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) < distinct {
		h.errf("cluster-breaker: found %d/%d requests owned by %s in 4096 candidates", len(reqs), distinct, dead)
		return
	}

	entry := nodes[0]
	bad, fiveXX := 0, 0
	for i, req := range reqs {
		status, _, _, err := h.postTo(entry, req)
		if err != nil || status != 200 {
			h.errf("cluster-breaker: post %d: status %d err %v", i, status, err)
			bad++
		}
		if status >= 500 {
			fiveXX++
		}
	}
	// Drain the write-through first: the replicas owed to the dead owner
	// are what deterministically exercises the backoff schedule.
	m := h.waitReplDrained(nodes, "cluster-breaker", 30*time.Second)
	if m == nil {
		return
	}
	opens := sumAbs(m, "breaker_opens")
	shorts := sumAbs(m, "breaker_short_circuits")
	retries := sumAbs(m, "forward_retries") + sumAbs(m, "repl_retries")
	fmt.Printf("cluster-breaker: %d dead-owner posts via %s — %d failed, %d 5xx; breaker opens=%d short_circuits=%d, backoff retries=%d (forward+repl)\n",
		len(reqs), entry, bad, fiveXX, opens, shorts, retries)

	if check {
		if bad > 0 {
			h.errf("cluster-breaker: %d dead-owner requests failed, want all served by replicas", bad)
		}
		if fiveXX > 0 {
			h.errf("cluster-breaker: %d 5xx — a dead owner surfaced as an error", fiveXX)
		}
		if opens < 1 {
			h.errf("cluster-breaker: breaker_opens = %d, want ≥ 1 (the dead peer was never detected)", opens)
		}
		if shorts < 1 {
			h.errf("cluster-breaker: breaker_short_circuits = %d, want ≥ 1 (an open breaker never short-circuited)", shorts)
		}
		if retries < 1 {
			h.errf("cluster-breaker: retries = %d, want ≥ 1 — the backoff path never ran", retries)
		}
	}
}

// runClusterDown drives fresh load with one owner dead: -cluster lists only
// the survivors. Requests whose hash the dead node owns must degrade to
// local solves (forward fallback), never to errors.
func runClusterDown(h *harness, nodes []string, distinct int, check bool) {
	m0 := h.clusterMetrics(nodes, "cluster-down")
	if m0 == nil {
		return
	}
	bad, fiveXX, posted := 0, 0, 0
	var fallbacks int64
	// A fresh voltage family per attempt; with ~1/3 of hash space owned by
	// the dead node one family all but guarantees a fallback, the retry
	// covers the astronomically unlucky draw.
	for attempt := 0; attempt < 3; attempt++ {
		for i := 0; i < distinct; i++ {
			req := sweepRequest(5.0+0.05*float64(attempt*distinct+i), 2e-6, 1e-8)
			status, _, _, err := h.postTo(nodes[i%len(nodes)], req)
			posted++
			if err != nil || status != 200 {
				h.errf("cluster-down: req %d: status %d err %v", attempt*distinct+i, status, err)
				bad++
			}
			if status >= 500 {
				fiveXX++
			}
		}
		m1 := h.clusterMetrics(nodes, "cluster-down")
		if m1 == nil {
			return
		}
		if fallbacks = sumDelta(m0, m1, "forward_fallbacks"); fallbacks >= 1 {
			break
		}
	}
	fmt.Printf("cluster-down: %d fresh requests against %d survivors — %d forward fallbacks, %d 5xx\n",
		posted, len(nodes), fallbacks, fiveXX)

	if check {
		if bad > 0 {
			h.errf("cluster-down: %d failed posts with a node down", bad)
		}
		if fiveXX > 0 {
			h.errf("cluster-down: %d 5xx responses — degradation must not surface errors", fiveXX)
		}
		if fallbacks < 1 {
			h.errf("cluster-down: no forward fallbacks recorded — the dead owner's share was never exercised")
		}
	}
}

// clusterOpts bundles the -cluster-* flags for one phase run.
type clusterOpts struct {
	phase       string
	nodeList    string // live nodes the phase posts to / reads metrics from
	bodiesPath  string
	restarted   string // restart phase: base URL of the restarted node
	joined      string // join phase: base URL of the node that joined
	ring        string // breaker phase: full membership addrs, dead included
	dead        string // breaker phase: the dead owner's addr
	replication int
	distinct    int
	seed        int64
	check       bool
	bench       bool
}

func splitList(list string) []string {
	var out []string
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// runClusterPhase dispatches -cluster-phase.
func runClusterPhase(h *harness, o clusterOpts) {
	nodes := splitList(o.nodeList)
	if len(nodes) == 0 {
		h.errf("cluster: -cluster lists no nodes")
		return
	}
	switch o.phase {
	case "mix":
		runClusterMix(h, nodes, o.bodiesPath, o.distinct, o.seed, o.replication, o.check, o.bench)
	case "restart":
		runClusterRestart(h, nodes, o.restarted, o.bodiesPath, o.check)
	case "replay":
		runClusterReplay(h, nodes, o.bodiesPath, o.check)
	case "kill":
		runClusterKill(h, nodes, o.bodiesPath, o.check)
	case "join":
		runClusterJoin(h, nodes, o.joined, o.bodiesPath, o.replication, o.check)
	case "breaker":
		runClusterBreaker(h, nodes, splitList(o.ring), o.dead, o.distinct, o.check)
	case "down":
		runClusterDown(h, nodes, o.distinct, o.check)
	default:
		h.errf("cluster: unknown -cluster-phase %q (want mix, restart, replay, kill, join, breaker, or down)", o.phase)
	}
}
