// Command speedup reproduces the paper's headline §5 result: on the
// air-damped VCO driven for 3 ms (≈ 2–3 thousand oscillation cycles),
// transient simulation needs on the order of 1000 points per nominal cycle
// to match the WaMPDE's phase accuracy, giving the WaMPDE a cost advantage
// of roughly two orders of magnitude in computed time points.
//
// The table reports, per method: time points computed, wall-clock time, and
// accumulated phase error versus the 1000-points-per-cycle reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	wampde "repro"
	"repro/internal/textplot"
)

func main() {
	span := flag.Float64("span", 3e-3, "simulated span in seconds")
	steps := flag.Int("steps", 0, "WaMPDE t2 steps (default 600)")
	chord := flag.Bool("chord", true, "carry the chord-Newton factorization across t2 steps")
	gmres := flag.Bool("gmres", false, "solve the per-step Jacobian systems with preconditioned GMRES instead of dense LU")
	matfree := flag.Bool("matfree", false, "apply the bordered Jacobian matrix-free (spectral operator, no assembly); overrides -gmres")
	recycle := flag.Bool("recycle", true, "carry the GCRO-DR deflation space across GMRES solves (with -gmres/-matfree)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "speedup:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "speedup:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "speedup:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "speedup:", err)
			}
		}()
	}

	run, rows, err := wampde.SpeedupReport(wampde.VCORunConfig{T2End: *span, Steps: *steps,
		ChordNewton: *chord, GMRES: *gmres, MatrixFree: *matfree, RecycleKrylov: *recycle}, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(1)
	}
	min, max := run.FrequencyRange()
	fmt.Printf("air-damped VCO, span %.3g s, local frequency %.2f–%.2f MHz\n\n", *span, min/1e6, max/1e6)

	table := [][]string{}
	for _, r := range rows {
		table = append(table, []string{
			r.Method,
			fmt.Sprintf("%d", r.TimePoints),
			r.WallTime.Round(1e6 * 1).String(),
			fmt.Sprintf("%.4f", r.PhaseErrEnd),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"method", "time points", "wall clock", "phase err (cycles, vs reference)"},
		table))

	wampdePts := rows[0].TimePoints
	refPts := rows[len(rows)-1].TimePoints
	fmt.Printf("\ncost ratio (reference transient / WaMPDE): %.0fx in time points, %.1fx in wall clock\n",
		float64(refPts)/float64(wampdePts),
		float64(rows[len(rows)-1].WallTime)/float64(run.WallTime))
	fmt.Println("(the paper reports \"a speed disadvantage of two orders of magnitude\" for the")
	fmt.Println(" 1000-points-per-cycle transient on its 1999 implementation)")
}
