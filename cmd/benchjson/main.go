// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout, so CI tiers and scripts can diff
// benchmark baselines (see `ci.sh bench`, which snapshots the hot-loop
// numbers into BENCH_pr3.json) without scraping the text format themselves.
//
// With -check FILE it compares the run on stdin against a committed baseline
// instead of emitting JSON: a benchmark missing from the run or an
// allocs/op count above the baseline (plus a small slack) fails the check,
// while ns/op drift beyond -tol in either direction only warns — allocation
// counts are deterministic, timings are machine-specific.
//
// Lines that are not benchmark results (the cpu/goos banner, PASS/ok) are
// ignored; the -cpu suffix goos appends to benchmark names is kept, since it
// distinguishes runs at different worker counts.
//
// With -ring-gate it instead reads a ring scaling run from stdin and
// enforces the dense/matrix-free crossover per benchmark family. Any
// benchmark shaped Benchmark*/stages=N/{dense,matfree} participates —
// BenchmarkRingScaling (envelope-following) and BenchmarkQPRingScaling
// (global quasiperiodic solve) today — and each family is gated
// independently: at every stage count where both modes ran and
// stages >= -ring-gate-stages, the matrix-free solve must be no slower than
// the dense one, and at the family's crossover stage count itself it must
// win by at least -ring-min-speedup. This is a ratio gate — both numbers
// come from the same run on the same machine — so it holds across hardware,
// unlike the absolute ns/op baselines.
//
// With -converter-gate it reads a converter workload run from stdin and
// enforces the MPDE-vs-transient wall-clock claim: any benchmark shaped
// Benchmark*/<circuit>/{mpde,transient} — BenchmarkConverterRipple today —
// must show the mpde mode at least -converter-min-speedup times faster than
// the transient for the same circuit. Another within-run ratio gate, so it
// too holds across hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Go         string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.NsPerOp = v
				ok = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.AllocsPerOp = &v
			}
		case "MB/s":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.MBPerSec = &v
			}
		}
	}
	return b, ok
}

func readBenchmarks(sc *bufio.Scanner) ([]Benchmark, error) {
	var out []Benchmark
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// check compares the current run against the baseline report and prints one
// line per baseline benchmark. It returns false when a baseline benchmark is
// missing from the run or allocates more than the baseline allows; ns/op
// drift beyond tol in either direction is reported but does not fail.
func check(baseline Report, run []Benchmark, tol float64, allocSlack int64, w *os.File) bool {
	byName := make(map[string]Benchmark, len(run))
	for _, b := range run {
		byName[b.Name] = b
	}
	pass := true
	for _, base := range baseline.Benchmarks {
		got, ok := byName[base.Name]
		if !ok {
			fmt.Fprintf(w, "FAIL %s: missing from this run\n", base.Name)
			pass = false
			continue
		}
		status := "ok  "
		var notes []string
		if base.AllocsPerOp != nil {
			limit := *base.AllocsPerOp + allocSlack
			switch {
			case got.AllocsPerOp == nil:
				notes = append(notes, "no allocs/op in run (need -benchmem)")
				status = "FAIL"
				pass = false
			case *got.AllocsPerOp > limit:
				notes = append(notes, fmt.Sprintf("allocs/op %d > baseline %d (+%d slack)",
					*got.AllocsPerOp, *base.AllocsPerOp, allocSlack))
				status = "FAIL"
				pass = false
			default:
				notes = append(notes, fmt.Sprintf("allocs/op %d (baseline %d)", *got.AllocsPerOp, *base.AllocsPerOp))
			}
		}
		if base.NsPerOp > 0 {
			rel := got.NsPerOp/base.NsPerOp - 1
			if math.Abs(rel) > tol {
				notes = append(notes, fmt.Sprintf("WARN ns/op %+.0f%% vs baseline (%.3g vs %.3g)",
					100*rel, got.NsPerOp, base.NsPerOp))
				if status == "ok  " {
					status = "warn"
				}
			} else {
				notes = append(notes, fmt.Sprintf("ns/op %+.0f%%", 100*rel))
			}
		}
		fmt.Fprintf(w, "%s %s: %s\n", status, base.Name, strings.Join(notes, ", "))
	}
	return pass
}

// ringResult is one family's stages=N/{dense,matfree} timing pair.
type ringResult struct {
	dense, matfree float64 // ns/op; 0 when that mode did not run
}

// parseRingName extracts (family, stages, mode) from a scaling benchmark name
// like "BenchmarkRingScaling/stages=15/matfree-8". Any top-level benchmark
// with the stages=N/{dense,matfree} sub-benchmark shape participates; the
// trailing -cpu suffix goos appends is stripped from the mode segment.
func parseRingName(name string) (family string, stages int, mode string, ok bool) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "Benchmark") {
		return "", 0, "", false
	}
	s, found := strings.CutPrefix(parts[1], "stages=")
	if !found {
		return "", 0, "", false
	}
	stages, err := strconv.Atoi(s)
	if err != nil || stages <= 0 {
		return "", 0, "", false
	}
	mode = parts[2]
	if i := strings.LastIndexByte(mode, '-'); i >= 0 {
		if _, err := strconv.Atoi(mode[i+1:]); err == nil {
			mode = mode[:i]
		}
	}
	if mode != "dense" && mode != "matfree" {
		return "", 0, "", false
	}
	return parts[0], stages, mode, true
}

// parseConverterName extracts (family, circuit, mode) from a converter
// benchmark name like "BenchmarkConverterRipple/buck/mpde-8". Any top-level
// benchmark with a <circuit>/{mpde,transient} sub-benchmark shape
// participates; the trailing -cpu suffix goos appends is stripped from the
// mode segment.
func parseConverterName(name string) (family, circuit, mode string, ok bool) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "Benchmark") {
		return "", "", "", false
	}
	mode = parts[2]
	if i := strings.LastIndexByte(mode, '-'); i >= 0 {
		if _, err := strconv.Atoi(mode[i+1:]); err == nil {
			mode = mode[:i]
		}
	}
	if mode != "mpde" && mode != "transient" {
		return "", "", "", false
	}
	return parts[0], parts[1], mode, true
}

// converterGate enforces the converter workload's wall-clock claim on one
// run: for every (family, circuit) measured in both modes, the MPDE ripple
// envelope must beat the brute-force transient by at least minSpeedup. Like
// -ring-gate this is a within-run ratio — both numbers come from the same
// machine — so it holds across hardware, unlike the ns/op baselines.
func converterGate(run []Benchmark, minSpeedup float64, w *os.File) bool {
	type convKey struct{ family, circuit string }
	type convResult struct{ mpde, transient float64 }
	byKey := map[convKey]*convResult{}
	var keys []convKey
	for _, b := range run {
		family, circuit, mode, ok := parseConverterName(b.Name)
		if !ok {
			continue
		}
		k := convKey{family, circuit}
		r := byKey[k]
		if r == nil {
			r = &convResult{}
			byKey[k] = r
			keys = append(keys, k)
		}
		if mode == "mpde" {
			r.mpde = b.NsPerOp
		} else {
			r.transient = b.NsPerOp
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].family != keys[j].family {
			return keys[i].family < keys[j].family
		}
		return keys[i].circuit < keys[j].circuit
	})
	pass := true
	for _, k := range keys {
		r := byKey[k]
		if r.mpde == 0 || r.transient == 0 {
			fmt.Fprintf(w, "FAIL %s/%s: need both modes (mpde %.3g ns/op, transient %.3g ns/op)\n",
				k.family, k.circuit, r.mpde, r.transient)
			pass = false
			continue
		}
		ratio := r.transient / r.mpde
		if ratio < minSpeedup {
			fmt.Fprintf(w, "FAIL %s/%s: mpde speedup %.2fx < required %.2fx (mpde %.3g ns/op, transient %.3g ns/op)\n",
				k.family, k.circuit, ratio, minSpeedup, r.mpde, r.transient)
			pass = false
		} else {
			fmt.Fprintf(w, "ok   %s/%s: mpde %.2fx transient (mpde %.3g ns/op, transient %.3g ns/op)\n",
				k.family, k.circuit, ratio, r.mpde, r.transient)
		}
	}
	if len(keys) == 0 {
		fmt.Fprintf(w, "FAIL no <circuit>/{mpde,transient} benchmarks on stdin; converter claim unverified\n")
		pass = false
	}
	return pass
}

// ringGate enforces the crossover claim on one scaling run, independently per
// benchmark family: wherever both modes were measured at stages >= from,
// matrix-free must be at least as fast as dense, and at each family's
// crossover point (its smallest gated stage count with both modes) it must
// win by minSpeedup. One line per (family, stage count) is printed either
// way, so the report doubles as the scaling table.
func ringGate(run []Benchmark, from int, minSpeedup float64, w *os.File) bool {
	type ringKey struct {
		family string
		stages int
	}
	byKey := map[ringKey]*ringResult{}
	var families []string
	stagesOf := map[string][]int{}
	for _, b := range run {
		family, stages, mode, ok := parseRingName(b.Name)
		if !ok {
			continue
		}
		k := ringKey{family, stages}
		r := byKey[k]
		if r == nil {
			r = &ringResult{}
			byKey[k] = r
			if len(stagesOf[family]) == 0 {
				families = append(families, family)
			}
			stagesOf[family] = append(stagesOf[family], stages)
		}
		if mode == "dense" {
			r.dense = b.NsPerOp
		} else {
			r.matfree = b.NsPerOp
		}
	}
	sort.Strings(families)
	pass := true
	for _, family := range families {
		order := stagesOf[family]
		sort.Ints(order)
		crossoverSeen := false
		for _, stages := range order {
			r := byKey[ringKey{family, stages}]
			if r.dense == 0 || r.matfree == 0 {
				fmt.Fprintf(w, "ok   %s stages=%d: single mode only (dense %.3g ns/op, matfree %.3g ns/op)\n",
					family, stages, r.dense, r.matfree)
				continue
			}
			ratio := r.dense / r.matfree
			switch {
			case stages < from:
				fmt.Fprintf(w, "ok   %s stages=%d: ungated, matfree %.2fx dense\n", family, stages, ratio)
			case !crossoverSeen:
				crossoverSeen = true
				if ratio < minSpeedup {
					fmt.Fprintf(w, "FAIL %s stages=%d: crossover speedup %.2fx < required %.2fx (dense %.3g ns/op, matfree %.3g ns/op)\n",
						family, stages, ratio, minSpeedup, r.dense, r.matfree)
					pass = false
				} else {
					fmt.Fprintf(w, "ok   %s stages=%d: crossover speedup %.2fx >= %.2fx\n", family, stages, ratio, minSpeedup)
				}
			default:
				if ratio < 1 {
					fmt.Fprintf(w, "FAIL %s stages=%d: matfree slower than dense (%.2fx)\n", family, stages, ratio)
					pass = false
				} else {
					fmt.Fprintf(w, "ok   %s stages=%d: matfree %.2fx dense\n", family, stages, ratio)
				}
			}
		}
		if !crossoverSeen {
			fmt.Fprintf(w, "FAIL %s: no stage count >= %d measured in both modes; crossover unverified\n", family, from)
			pass = false
		}
	}
	if len(families) == 0 {
		fmt.Fprintf(w, "FAIL no stages=N/{dense,matfree} benchmarks on stdin; crossover unverified\n")
		pass = false
	}
	return pass
}

func main() {
	checkFile := flag.String("check", "", "compare stdin against the baseline JSON `file` instead of emitting JSON")
	tol := flag.Float64("tol", 0.20, "relative ns/op drift that triggers a warning in -check mode")
	allocSlack := flag.Int64("alloc-slack", 2, "allocs/op above baseline tolerated in -check mode")
	ringGateMode := flag.Bool("ring-gate", false, "gate a ring scaling run on stdin: matrix-free must beat dense from -ring-gate-stages up, per benchmark family")
	ringFrom := flag.Int("ring-gate-stages", 15, "smallest stage count the -ring-gate crossover claim covers")
	ringMin := flag.Float64("ring-min-speedup", 3.0, "required matfree-over-dense speedup at each family's -ring-gate crossover point")
	convGateMode := flag.Bool("converter-gate", false, "gate a converter run on stdin: the mpde mode must beat the transient per <circuit>, by -converter-min-speedup")
	convMin := flag.Float64("converter-min-speedup", 1.0, "required mpde-over-transient speedup in -converter-gate mode")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	benches, err := readBenchmarks(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *ringGateMode {
		if !ringGate(benches, *ringFrom, *ringMin, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	if *convGateMode {
		if !converterGate(benches, *convMin, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	if *checkFile != "" {
		raw, err := os.ReadFile(*checkFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var baseline Report
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *checkFile, err)
			os.Exit(1)
		}
		if len(baseline.Benchmarks) == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s: empty baseline\n", *checkFile)
			os.Exit(1)
		}
		if !check(baseline, benches, *tol, *allocSlack, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	rep := Report{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), Benchmarks: benches}
	if rep.Benchmarks == nil {
		rep.Benchmarks = []Benchmark{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
