// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout, so CI tiers and scripts can diff
// benchmark baselines (see `ci.sh bench`, which snapshots the hot-loop
// numbers into BENCH_pr2.json) without scraping the text format themselves.
//
// Lines that are not benchmark results (the cpu/goos banner, PASS/ok) are
// ignored; the -cpu suffix goos appends to benchmark names is kept, since it
// distinguishes runs at different worker counts.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Go         string      `json:"go"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.NsPerOp = v
				ok = true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.BytesPerOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.AllocsPerOp = &v
			}
		case "MB/s":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.MBPerSec = &v
			}
		}
	}
	return b, ok
}

func main() {
	rep := Report{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
