// Command circuitsim is a small SPICE-like driver over the simulation
// library: it reads a netlist (see internal/netlist for the format) and
// runs one of the analyses:
//
//	circuitsim -i ckt.sp -analysis dc
//	circuitsim -i ckt.sp -analysis tran -tstop 1m -h 1u [-out node]
//	circuitsim -i ckt.sp -analysis pss -period 1u
//	circuitsim -i ckt.sp -analysis envelope -tstop 60u -steps 400 -f0 750k
//
// The envelope analysis runs the WaMPDE and requires the netlist to mark an
// oscillation node with ".oscvar <node>".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	wampde "repro"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/shooting"
	"repro/internal/solverr"
	"repro/internal/textplot"
	"repro/internal/transient"
)

func main() {
	in := flag.String("i", "", "netlist file (required)")
	analysis := flag.String("analysis", "dc", "dc | tran | pss | envelope")
	tstopStr := flag.String("tstop", "", "end time for tran/envelope (suffixes ok, e.g. 60u)")
	hstepStr := flag.String("h", "", "time step for tran (suffixes ok)")
	periodStr := flag.String("period", "", "forcing period for pss (suffixes ok)")
	steps := flag.Int("steps", 400, "t2 steps for envelope")
	n1 := flag.Int("n1", 25, "warped-axis points for envelope")
	f0 := flag.String("f0", "", "oscillation frequency guess for pss/envelope (e.g. 750k)")
	matfree := flag.Bool("matfree", false, "envelope only: apply the bordered step Jacobian matrix-free (spectral operator) instead of assembling it — the large-circuit path")
	out := flag.String("out", "", "node to print (default: all states)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the analysis (0 = none); tran/envelope print the partial waveform computed before expiry")
	flag.Parse()

	ctx := context.Context(nil)
	if *timeout > 0 {
		c, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ctx = c
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "circuitsim: -i <netlist> is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	fatal(err)
	tstop := parseOpt(*tstopStr)
	hstep := parseOpt(*hstepStr)
	period := parseOpt(*periodStr)
	ckt, err := netlist.Parse(string(src))
	fatal(err)
	sys, err := ckt.Build()
	fatal(err)

	outIdx := -1
	if *out != "" {
		outIdx, err = sys.NodeIndex(*out)
		fatal(err)
	}

	switch *analysis {
	case "dc":
		x := make([]float64, sys.Dim())
		fatal(transient.DCOperatingPoint(sys, 0, x, transient.DCOptions{}))
		for i, v := range x {
			fmt.Printf("%-16s %.8g\n", sys.StateName(i), v)
		}
	case "tran":
		if tstop <= 0 || hstep <= 0 {
			fatal(solverr.New(solverr.KindBadInput, "circuitsim", "tran needs -tstop and -h"))
		}
		x := make([]float64, sys.Dim())
		fatal(transient.DCOperatingPoint(sys, 0, x, transient.DCOptions{}))
		res, err := transient.Simulate(sys, x, 0, tstop, transient.Options{Method: transient.Trap, H: hstep, Ctx: ctx})
		if err != nil && (res == nil || len(res.T) == 0) {
			fatal(err)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "circuitsim: partial run:", err)
		}
		printSeries(sys, res, outIdx)
		if err != nil {
			os.Exit(solverr.ExitCode(err)) // partial printed; status still reports the kind
		}
	case "pss":
		if period <= 0 {
			fatal(solverr.New(solverr.KindBadInput, "circuitsim", "pss needs -period"))
		}
		x := make([]float64, sys.Dim())
		fatal(transient.DCOperatingPoint(sys, 0, x, transient.DCOptions{}))
		pss, err := shooting.Forced(sys, x, period, shooting.Options{Method: transient.Trap, Ctx: ctx})
		fatal(err)
		fmt.Printf("# periodic steady state, period %.6g\n", pss.T)
		printSeries(sys, pss.Orbit, outIdx)
	case "envelope":
		if tstop <= 0 {
			fatal(solverr.New(solverr.KindBadInput, "circuitsim", "envelope needs -tstop"))
		}
		if sys.OscVar() < 0 {
			fatal(solverr.New(solverr.KindBadInput, "circuitsim", "envelope needs '.oscvar <node>' in the netlist"))
		}
		fGuess := wampde.VCONominalFreq
		if *f0 != "" {
			v, err := netlist.ParseValue(*f0)
			fatal(err)
			fGuess = v
		}
		// Kick the oscillation variable off equilibrium for the settling run.
		xg := make([]float64, sys.Dim())
		fatal(transient.DCOperatingPoint(sys, 0, xg, transient.DCOptions{}))
		xg[sys.OscVar()] += 0.5
		xhat0, omega0, err := core.InitialCondition(sys, xg, 1/fGuess, core.ICOptions{N1: *n1})
		fatal(err)
		eopt := core.EnvelopeOptions{
			N1: *n1, H2: tstop / float64(*steps), Trap: true, Ctx: ctx,
		}
		if *matfree {
			eopt.Linear = core.LinearMatrixFree
		}
		res, err := core.Envelope(sys, xhat0, omega0, tstop, eopt)
		if err != nil && (res == nil || len(res.T2) == 0) {
			fatal(err)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "circuitsim: partial run:", err)
		}
		fmt.Println("# t2, local_frequency_hz")
		for k := range res.T2 {
			fmt.Printf("%.8g %.8g\n", res.T2[k], res.Omega[k])
		}
		freqs := make([]float64, len(res.Omega))
		copy(freqs, res.Omega)
		p := textplot.NewPlot("local frequency", 72, 14)
		p.Add(res.T2, freqs, '*')
		fmt.Fprint(os.Stderr, p.Render())
		if err != nil {
			os.Exit(solverr.ExitCode(err)) // partial printed; status still reports the kind
		}
	default:
		fatal(solverr.New(solverr.KindBadInput, "circuitsim", "unknown analysis %q", *analysis))
	}
}

func printSeries(sys *wampde.CircuitSystem, res *transient.Result, outIdx int) {
	if outIdx >= 0 {
		fmt.Printf("# t, %s\n", sys.StateName(outIdx))
		for i := range res.T {
			fmt.Printf("%.8g %.8g\n", res.T[i], res.X[i][outIdx])
		}
		return
	}
	fmt.Print("# t")
	for i := 0; i < sys.Dim(); i++ {
		fmt.Printf(", %s", sys.StateName(i))
	}
	fmt.Println()
	for i := range res.T {
		fmt.Printf("%.8g", res.T[i])
		for j := 0; j < sys.Dim(); j++ {
			fmt.Printf(" %.8g", res.X[i][j])
		}
		fmt.Println()
	}
}

func parseOpt(s string) float64 {
	if s == "" {
		return 0
	}
	v, err := netlist.ParseValue(s)
	fatal(err)
	return v
}

// fatal exits with the failure kind's exit code (see solverr.ExitCode):
// bad input 2, singular 3, breakdown 4, stagnation 5, non-finite 6, budget
// 7, canceled 8, unclassified 1 — so batch harnesses can dispatch on the
// status without parsing stderr.
func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "circuitsim:", err)
		os.Exit(solverr.ExitCode(err))
	}
}
