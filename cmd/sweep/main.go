// Command sweep runs convergence and cost studies of the WaMPDE solver on
// the paper's vacuum VCO, complementing the figure harnesses:
//
//   - t2-step refinement: accumulated-phase error vs step count (the
//     trapezoidal rule's second order, and the absolute phase accuracy
//     behind Figure 12's bounded-error behaviour);
//   - warped-axis resolution: cost and initial-frequency consistency vs N1
//     (spectral convergence of the t1 collocation).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	wampde "repro"
	"repro/internal/core"
	"repro/internal/textplot"
)

func main() {
	flag.Parse()

	vco, err := wampde.NewPaperVCO(false)
	fatal(err)
	t2End := 60e-6
	u0 := vco.StaticDisplacement(vco.Params.VCtl(0))

	fmt.Println("== t2-step refinement (N1 = 25, trapezoidal) ==")
	ic, w0, err := core.InitialCondition(vco, []float64{0.5, 0, u0, 0}, 1/wampde.VCONominalFreq, core.ICOptions{N1: 25})
	fatal(err)
	type row struct {
		steps int
		phi   float64
		wall  time.Duration
	}
	var rows []row
	for _, steps := range []int{100, 200, 400, 800, 1600} {
		start := time.Now()
		res, err := core.Envelope(vco, ic, w0, t2End, core.EnvelopeOptions{
			N1: 25, H2: t2End / float64(steps), Trap: true,
		})
		fatal(err)
		rows = append(rows, row{steps, res.Phi[len(res.Phi)-1], time.Since(start)})
	}
	ref := rows[len(rows)-1].phi
	var table [][]string
	for i, r := range rows[:len(rows)-1] {
		e := math.Abs(r.phi - ref)
		ratio := "-"
		if i > 0 {
			prev := math.Abs(rows[i-1].phi - ref)
			ratio = fmt.Sprintf("%.2f", prev/e)
		}
		table = append(table, []string{
			fmt.Sprintf("%d", r.steps),
			fmt.Sprintf("%.1f", r.phi),
			fmt.Sprintf("%.2e", e),
			ratio,
			r.wall.Round(time.Millisecond).String(),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"t2 steps", "total phase (cycles)", "|phase err| vs 1600", "ratio", "wall"},
		table))
	fmt.Println("(ratio ≈ 4 per halving = the trapezoidal rule's order 2)")

	fmt.Println("\n== warped-axis resolution N1 (400 t2 steps) ==")
	var t2 [][]string
	var omegaRef float64
	for _, n1 := range []int{9, 13, 17, 25, 33} {
		icN, w0N, err := core.InitialCondition(vco, []float64{0.5, 0, u0, 0}, 1/wampde.VCONominalFreq, core.ICOptions{N1: n1})
		fatal(err)
		start := time.Now()
		res, err := core.Envelope(vco, icN, w0N, t2End, core.EnvelopeOptions{
			N1: n1, H2: t2End / 400, Trap: true,
		})
		fatal(err)
		wall := time.Since(start)
		omegaEnd := res.Omega[len(res.Omega)-1]
		if n1 == 33 {
			omegaRef = omegaEnd
		}
		t2 = append(t2, []string{
			fmt.Sprintf("%d", n1),
			fmt.Sprintf("%.6f", omegaEnd/1e6),
			wall.Round(time.Millisecond).String(),
		})
	}
	for i := range t2 {
		v := 0.0
		fmt.Sscanf(t2[i][1], "%f", &v)
		t2[i] = append(t2[i], fmt.Sprintf("%.2e", math.Abs(v*1e6-omegaRef)/omegaRef))
	}
	fmt.Print(textplot.Table(
		[]string{"N1", "ω(t2End) (MHz)", "wall", "rel diff vs N1=33"},
		t2))
	fmt.Println("(spectral collocation: already converged by N1 ≈ 17 for this waveform;")
	fmt.Println(" cost grows ≈ N1³ through the per-step factorization)")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
