// Command sweep runs parameter and convergence studies of the WaMPDE solver
// on the paper's §5 VCO:
//
//   - tuning: the warm-started continuation sweep of the tuning curve
//     f(Vctl) — each point's shooting restarts from its neighbor's orbit
//     (internal/sweep + core.WarmStart), with a cold baseline for
//     comparison;
//   - steps: t2-step refinement — accumulated-phase error vs step count
//     (the trapezoidal rule's second order behind Figure 12);
//   - n1: warped-axis resolution — cost and initial-frequency consistency
//     vs N1 (spectral convergence of the t1 collocation).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	wampde "repro"
	"repro/internal/core"
	"repro/internal/textplot"
)

func main() {
	mode := flag.String("mode", "tuning", "study to run: tuning, steps, n1, or all")
	from := flag.Float64("from", 1.2, "tuning: sweep start control voltage")
	to := flag.Float64("to", 2.4, "tuning: sweep end control voltage")
	points := flag.Int("points", 13, "tuning: number of grid points")
	lanes := flag.Int("lanes", 1, "tuning: concurrent continuation chains")
	air := flag.Bool("air", false, "tuning: air-damped configuration")
	cold := flag.Bool("cold", false, "tuning: disable warm continuation")
	flag.Parse()

	switch *mode {
	case "tuning":
		runTuning(*from, *to, *points, *lanes, *air, *cold)
	case "steps":
		runStepRefinement()
	case "n1":
		runN1Resolution()
	case "all":
		runTuning(*from, *to, *points, *lanes, *air, *cold)
		fmt.Println()
		runStepRefinement()
		fmt.Println()
		runN1Resolution()
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown -mode %q (want tuning, steps, n1, or all)\n", *mode)
		os.Exit(2)
	}
}

// runTuning sweeps the VCO tuning curve by warm-started continuation and
// reports the per-point start kind and the amortization against a cold run.
func runTuning(from, to float64, points, lanes int, air, cold bool) {
	cfg := wampde.TuningSweepConfig{From: from, To: to, Points: points, Lanes: lanes, Air: air, Cold: cold}
	kind := "warm continuation"
	if cold {
		kind = "cold baseline"
	}
	fmt.Printf("== tuning curve f(Vctl), %d points in [%g, %g] V (%s, lanes=%d) ==\n",
		points, from, to, kind, lanes)
	res, err := wampde.TuningSweep(cfg)
	fatal(err)

	var rows [][]string
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.VCtl),
			fmt.Sprintf("%.6f", p.Freq/1e6),
			fmt.Sprintf("%.4f", p.U),
			p.Warm,
			time.Duration(p.WallNS).Round(time.Microsecond).String(),
		})
	}
	fmt.Print(textplot.Table([]string{"Vctl (V)", "f (MHz)", "u (static)", "start", "wall"}, rows))
	fmt.Printf("points %d, warm %d, fallbacks %d, total %s\n",
		len(res.Points), res.WarmUses, res.Fallbacks, time.Duration(res.WallNS).Round(time.Millisecond))

	if !cold {
		coldRes, err := wampde.TuningSweep(wampde.TuningSweepConfig{
			From: from, To: to, Points: points, Lanes: lanes, Air: air, Cold: true})
		fatal(err)
		worst := 0.0
		for i := range res.Points {
			rel := math.Abs(res.Points[i].Freq-coldRes.Points[i].Freq) / coldRes.Points[i].Freq
			if rel > worst {
				worst = rel
			}
		}
		fmt.Printf("vs cold baseline: %.2fx wall (%s vs %s), worst relative frequency diff %.2e\n",
			float64(res.WallNS)/float64(coldRes.WallNS),
			time.Duration(res.WallNS).Round(time.Millisecond),
			time.Duration(coldRes.WallNS).Round(time.Millisecond), worst)
	}
}

func runStepRefinement() {
	vco, err := wampde.NewPaperVCO(false)
	fatal(err)
	t2End := 60e-6
	u0 := vco.StaticDisplacement(vco.Params.VCtl(0))

	fmt.Println("== t2-step refinement (N1 = 25, trapezoidal) ==")
	ic, w0, err := core.InitialCondition(vco, []float64{0.5, 0, u0, 0}, 1/wampde.VCONominalFreq, core.ICOptions{N1: 25})
	fatal(err)
	type row struct {
		steps int
		phi   float64
		wall  time.Duration
	}
	var rows []row
	for _, steps := range []int{100, 200, 400, 800, 1600} {
		start := time.Now()
		res, err := core.Envelope(vco, ic, w0, t2End, core.EnvelopeOptions{
			N1: 25, H2: t2End / float64(steps), Trap: true,
		})
		fatal(err)
		rows = append(rows, row{steps, res.Phi[len(res.Phi)-1], time.Since(start)})
	}
	ref := rows[len(rows)-1].phi
	var table [][]string
	for i, r := range rows[:len(rows)-1] {
		e := math.Abs(r.phi - ref)
		ratio := "-"
		if i > 0 {
			prev := math.Abs(rows[i-1].phi - ref)
			ratio = fmt.Sprintf("%.2f", prev/e)
		}
		table = append(table, []string{
			fmt.Sprintf("%d", r.steps),
			fmt.Sprintf("%.1f", r.phi),
			fmt.Sprintf("%.2e", e),
			ratio,
			r.wall.Round(time.Millisecond).String(),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"t2 steps", "total phase (cycles)", "|phase err| vs 1600", "ratio", "wall"},
		table))
	fmt.Println("(ratio ≈ 4 per halving = the trapezoidal rule's order 2)")
}

func runN1Resolution() {
	vco, err := wampde.NewPaperVCO(false)
	fatal(err)
	t2End := 60e-6
	u0 := vco.StaticDisplacement(vco.Params.VCtl(0))

	fmt.Println("== warped-axis resolution N1 (400 t2 steps) ==")
	var t2 [][]string
	var omegaRef float64
	for _, n1 := range []int{9, 13, 17, 25, 33} {
		icN, w0N, err := core.InitialCondition(vco, []float64{0.5, 0, u0, 0}, 1/wampde.VCONominalFreq, core.ICOptions{N1: n1})
		fatal(err)
		start := time.Now()
		res, err := core.Envelope(vco, icN, w0N, t2End, core.EnvelopeOptions{
			N1: n1, H2: t2End / 400, Trap: true,
		})
		fatal(err)
		wall := time.Since(start)
		omegaEnd := res.Omega[len(res.Omega)-1]
		if n1 == 33 {
			omegaRef = omegaEnd
		}
		t2 = append(t2, []string{
			fmt.Sprintf("%d", n1),
			fmt.Sprintf("%.6f", omegaEnd/1e6),
			wall.Round(time.Millisecond).String(),
		})
	}
	for i := range t2 {
		v := 0.0
		fmt.Sscanf(t2[i][1], "%f", &v)
		t2[i] = append(t2[i], fmt.Sprintf("%.2e", math.Abs(v*1e6-omegaRef)/omegaRef))
	}
	fmt.Print(textplot.Table(
		[]string{"N1", "ω(t2End) (MHz)", "wall", "rel diff vs N1=33"},
		t2))
	fmt.Println("(spectral collocation: already converged by N1 ≈ 17 for this waveform;")
	fmt.Println(" cost grows ≈ N1³ through the per-step factorization)")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
