// Command wampde-server serves the simulation job API (internal/serve)
// over HTTP:
//
//	wampde-server -addr :8080 -workers 4 -queue 8 -cache-mb 32
//
// POST /v1/simulate runs (or replays from cache) one analysis; GET /healthz
// and GET /metrics expose liveness and the service counters. With -debug,
// net/http/pprof and expvar are mounted under /debug/.
//
// -addr-file writes the actually-bound address to a file after listening
// starts, so harnesses can pass -addr 127.0.0.1:0 and discover the port
// (see `ci.sh serve`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/par"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	workers := flag.Int("workers", 2, "concurrent engine solves")
	queue := flag.Int("queue", 0, "admission queue capacity (0 = 2x workers)")
	cacheMB := flag.Int("cache-mb", 32, "result cache budget in MiB (0 disables caching)")
	maxBodyKB := flag.Int("max-body-kb", 128, "request body cap in KiB")
	defaultDeadline := flag.Duration("default-deadline", 2*time.Minute, "job deadline when the request has no deadline_ms")
	solverWorkers := flag.Int("solver-workers", 0, "worker budget of each solve's internal parallelism (0 = library default)")
	debug := flag.Bool("debug", false, "mount /debug/pprof and /debug/vars")
	flag.Parse()

	if *solverWorkers > 0 {
		par.SetWorkers(*solverWorkers)
	}

	m := serve.NewMetrics()
	m.PublishExpvar()
	srv := serve.NewServer(serve.Config{
		Workers:         *workers,
		QueueCap:        *queue,
		CacheBytes:      int64(*cacheMB) << 20,
		MaxBodyBytes:    int64(*maxBodyKB) << 10,
		DefaultDeadline: *defaultDeadline,
		Debug:           *debug,
		Metrics:         m,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wampde-server:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wampde-server:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "wampde-server: listening on %s (workers=%d queue=%d cache=%dMiB solver-workers=%d)\n",
		ln.Addr(), *workers, *queue, *cacheMB, par.Workers())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "wampde-server:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "wampde-server: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "wampde-server: shutdown:", err)
		}
		srv.Close()
	}
}
