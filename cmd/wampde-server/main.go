// Command wampde-server serves the simulation job API (internal/serve)
// over HTTP:
//
//	wampde-server -addr :8080 -workers 4 -queue 8 -cache-mb 32
//
// POST /v1/simulate runs (or replays from cache) one analysis; GET /healthz
// and GET /metrics expose liveness and the service counters. With -debug,
// net/http/pprof and expvar are mounted under /debug/.
//
// -addr-file writes the actually-bound address to a file after listening
// starts, so harnesses can pass -addr 127.0.0.1:0 and discover the port
// (see `ci.sh serve`).
//
// Persistence and cluster mode:
//
//   - -store-dir DIR enables the disk-backed second cache tier: solved
//     bodies are appended to checksummed segment files and reloaded on
//     boot, so a restarted node serves its previously-solved hashes
//     without recomputing. -prewarm solves the named paper circuits on
//     startup when absent (a restart onto a warm store skips them all).
//
//   - -store-max-mb caps the disk tier: when the segment files exceed the
//     budget, whole cold segments are garbage-collected oldest-access
//     first (see disk_gc_* in /metrics).
//
//   - -peers wires the node into a cluster: a comma-separated list of
//     member host:port addresses, where an entry of the form @FILE is
//     resolved by polling FILE for an address (the -addr-file another node
//     wrote — how a CI harness boots N nodes on free ports). Content
//     hashes are owned by R nodes (-replication, default 2) of the
//     membership's consistent-hash ring; a node forwards requests it does
//     not own to the owners in ring order, fresh solves replicate to all
//     R owners, and -heartbeat-interval exchanges epoch-stamped membership
//     views so late joins propagate. The node's own advertised address
//     defaults to the bound address and can be overridden with -self.
//
//   - -join treats -peers as seed nodes only: the node POSTs
//     /v1/cluster/join to a seed, adopts the answered membership view, and
//     streams its consistent-hash share out of the existing owners' disk
//     stores before reporting ready. Dead peers are handled by a per-peer
//     circuit breaker (-breaker-threshold/-breaker-cooldown) and retries
//     back off on a capped jittered exponential schedule
//     (-backoff-base/-backoff-max, deterministic under -backoff-seed).
//
//     wampde-server -addr 127.0.0.1:7101 -store-dir /var/lib/wampde/n1 \
//     -prewarm -peers 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 \
//     -heartbeat-interval 1s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/par"
	"repro/internal/serve"
)

// resolvePeers expands a -peers list through serve.ParsePeerList (the
// validated-before-applied parser the fuzz suite covers): literal
// host:port entries pass through, @FILE entries poll the file until it
// holds an address (another node's -addr-file, written once that node is
// listening).
func resolvePeers(spec string, timeout time.Duration) ([]string, error) {
	sources, err := serve.ParsePeerList(spec)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(timeout)
	var peers []string
	for _, src := range sources {
		if src.File == "" {
			peers = append(peers, src.Addr)
			continue
		}
		for {
			if b, err := os.ReadFile(src.File); err == nil && len(strings.TrimSpace(string(b))) > 0 {
				peers = append(peers, strings.TrimSpace(string(b)))
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("peer file %s not written within %v", src.File, timeout)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	self := flag.String("self", "", "advertised cluster address (default: the bound address)")
	peers := flag.String("peers", "", "cluster peer list: comma-separated host:port or @addr-file entries (empty = single node)")
	workers := flag.Int("workers", 2, "concurrent engine solves")
	queue := flag.Int("queue", 0, "admission queue capacity (0 = 2x workers)")
	cacheMB := flag.Int("cache-mb", 32, "result cache budget in MiB (0 disables caching)")
	storeDir := flag.String("store-dir", "", "disk cache tier directory (empty disables persistence)")
	storeSegMB := flag.Int("store-segment-mb", 64, "segment roll threshold in MiB for the disk store")
	storeMaxMB := flag.Int("store-max-mb", 0, "disk tier byte cap in MiB; cold segments are GCed above it (0 = unbounded)")
	prewarm := flag.Bool("prewarm", false, "solve the named paper circuits on startup when absent from the cache tiers")
	forwardTimeout := flag.Duration("forward-timeout", 0, "per-attempt cluster forwarding budget (0 = default-deadline + 15s)")
	forwardAttempts := flag.Int("forward-attempts", 0, "transport attempts per owner when forwarding (0 = default 2)")
	replication := flag.Int("replication", 0, "owners per content hash: fresh solves replicate to all R owners (0 = default 2, 1 = single owner)")
	join := flag.Bool("join", false, "join a running cluster through the -peers seeds instead of assuming static membership")
	heartbeatInterval := flag.Duration("heartbeat-interval", 0, "membership view exchange period (0 disables heartbeats)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive transport failures that open a peer's circuit breaker (0 = default 3)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default 2s)")
	backoffBase := flag.Duration("backoff-base", 0, "first retry backoff delay (0 = default 25ms)")
	backoffMax := flag.Duration("backoff-max", 0, "retry backoff ceiling (0 = default 500ms)")
	backoffSeed := flag.Int64("backoff-seed", 0, "deterministic seed of the retry jitter (0 = default 1)")
	maxBodyKB := flag.Int("max-body-kb", 128, "request body cap in KiB")
	defaultDeadline := flag.Duration("default-deadline", 2*time.Minute, "job deadline when the request has no deadline_ms")
	solverWorkers := flag.Int("solver-workers", 0, "worker budget of each solve's internal parallelism (0 = library default)")
	debug := flag.Bool("debug", false, "mount /debug/pprof and /debug/vars")
	flag.Parse()

	if *solverWorkers > 0 {
		par.SetWorkers(*solverWorkers)
	}

	// Listen before building the server: cluster peer resolution needs the
	// bound address (it is the default advertised identity, and writing
	// -addr-file first is what lets the other nodes' @FILE entries resolve
	// without a boot-order deadlock). Connections arriving before Serve
	// starts wait in the accept backlog.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wampde-server:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wampde-server:", err)
			os.Exit(1)
		}
	}

	var cluster *serve.ClusterConfig
	if *join && *peers == "" {
		fmt.Fprintln(os.Stderr, "wampde-server: -join requires -peers seed nodes")
		os.Exit(1)
	}
	if *peers != "" {
		resolved, err := resolvePeers(*peers, time.Minute)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wampde-server:", err)
			os.Exit(1)
		}
		advertised := *self
		if advertised == "" {
			advertised = ln.Addr().String()
		}
		cluster = &serve.ClusterConfig{
			Self:              advertised,
			Peers:             resolved,
			Join:              *join,
			Replication:       *replication,
			ForwardTimeout:    *forwardTimeout,
			ForwardAttempts:   *forwardAttempts,
			HeartbeatInterval: *heartbeatInterval,
			BreakerThreshold:  *breakerThreshold,
			BreakerCooldown:   *breakerCooldown,
			BackoffBase:       *backoffBase,
			BackoffMax:        *backoffMax,
			BackoffSeed:       *backoffSeed,
		}
		fmt.Fprintf(os.Stderr, "wampde-server: cluster self=%s join=%v peers=%v\n", advertised, *join, resolved)
	}

	m := serve.NewMetrics()
	m.PublishExpvar()
	srv, err := serve.NewServer(serve.Config{
		Workers:           *workers,
		QueueCap:          *queue,
		CacheBytes:        int64(*cacheMB) << 20,
		MaxBodyBytes:      int64(*maxBodyKB) << 10,
		DefaultDeadline:   *defaultDeadline,
		Debug:             *debug,
		StoreDir:          *storeDir,
		StoreSegmentBytes: int64(*storeSegMB) << 20,
		StoreMaxBytes:     int64(*storeMaxMB) << 20,
		Prewarm:           *prewarm,
		Cluster:           cluster,
		Metrics:           m,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wampde-server:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wampde-server: listening on %s (workers=%d queue=%d cache=%dMiB store=%q solver-workers=%d)\n",
		ln.Addr(), *workers, *queue, *cacheMB, *storeDir, par.Workers())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "wampde-server:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "wampde-server: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "wampde-server: shutdown:", err)
		}
		srv.Close()
	}
}
