// Command wampde-server serves the simulation job API (internal/serve)
// over HTTP:
//
//	wampde-server -addr :8080 -workers 4 -queue 8 -cache-mb 32
//
// POST /v1/simulate runs (or replays from cache) one analysis; GET /healthz
// and GET /metrics expose liveness and the service counters. With -debug,
// net/http/pprof and expvar are mounted under /debug/.
//
// -addr-file writes the actually-bound address to a file after listening
// starts, so harnesses can pass -addr 127.0.0.1:0 and discover the port
// (see `ci.sh serve`).
//
// Persistence and cluster mode:
//
//   - -store-dir DIR enables the disk-backed second cache tier: solved
//     bodies are appended to checksummed segment files and reloaded on
//     boot, so a restarted node serves its previously-solved hashes
//     without recomputing. -prewarm solves the named paper circuits on
//     startup when absent (a restart onto a warm store skips them all).
//
//   - -peers wires the node into a static cluster: a comma-separated list
//     of every member's advertised host:port, where an entry of the form
//     @FILE is resolved by polling FILE for an address (the -addr-file
//     another node wrote — how a CI harness boots N nodes on free ports).
//     Content hashes are owned by consistent hashing over the peer list;
//     a node forwards requests it does not own to the owner, so
//     single-flight dedup stays global. The node's own advertised address
//     defaults to the bound address and can be overridden with -self.
//
//     wampde-server -addr 127.0.0.1:7101 -store-dir /var/lib/wampde/n1 \
//     -prewarm -peers 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/par"
	"repro/internal/serve"
)

// resolvePeers expands a -peers list: literal host:port entries pass
// through, @FILE entries poll the file until it holds an address (another
// node's -addr-file, written once that node is listening).
func resolvePeers(spec string, timeout time.Duration) ([]string, error) {
	if spec == "" {
		return nil, nil
	}
	deadline := time.Now().Add(timeout)
	var peers []string
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		path, isFile := strings.CutPrefix(entry, "@")
		if !isFile {
			peers = append(peers, entry)
			continue
		}
		for {
			if b, err := os.ReadFile(path); err == nil && len(strings.TrimSpace(string(b))) > 0 {
				peers = append(peers, strings.TrimSpace(string(b)))
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("peer file %s not written within %v", path, timeout)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	self := flag.String("self", "", "advertised cluster address (default: the bound address)")
	peers := flag.String("peers", "", "cluster peer list: comma-separated host:port or @addr-file entries (empty = single node)")
	workers := flag.Int("workers", 2, "concurrent engine solves")
	queue := flag.Int("queue", 0, "admission queue capacity (0 = 2x workers)")
	cacheMB := flag.Int("cache-mb", 32, "result cache budget in MiB (0 disables caching)")
	storeDir := flag.String("store-dir", "", "disk cache tier directory (empty disables persistence)")
	storeSegMB := flag.Int("store-segment-mb", 64, "segment roll threshold in MiB for the disk store")
	prewarm := flag.Bool("prewarm", false, "solve the named paper circuits on startup when absent from the cache tiers")
	forwardTimeout := flag.Duration("forward-timeout", 0, "per-attempt cluster forwarding budget (0 = default-deadline + 15s)")
	maxBodyKB := flag.Int("max-body-kb", 128, "request body cap in KiB")
	defaultDeadline := flag.Duration("default-deadline", 2*time.Minute, "job deadline when the request has no deadline_ms")
	solverWorkers := flag.Int("solver-workers", 0, "worker budget of each solve's internal parallelism (0 = library default)")
	debug := flag.Bool("debug", false, "mount /debug/pprof and /debug/vars")
	flag.Parse()

	if *solverWorkers > 0 {
		par.SetWorkers(*solverWorkers)
	}

	// Listen before building the server: cluster peer resolution needs the
	// bound address (it is the default advertised identity, and writing
	// -addr-file first is what lets the other nodes' @FILE entries resolve
	// without a boot-order deadlock). Connections arriving before Serve
	// starts wait in the accept backlog.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wampde-server:", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "wampde-server:", err)
			os.Exit(1)
		}
	}

	var cluster *serve.ClusterConfig
	if *peers != "" {
		resolved, err := resolvePeers(*peers, time.Minute)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wampde-server:", err)
			os.Exit(1)
		}
		advertised := *self
		if advertised == "" {
			advertised = ln.Addr().String()
		}
		cluster = &serve.ClusterConfig{
			Self:           advertised,
			Peers:          resolved,
			ForwardTimeout: *forwardTimeout,
		}
		fmt.Fprintf(os.Stderr, "wampde-server: cluster self=%s peers=%v\n", advertised, resolved)
	}

	m := serve.NewMetrics()
	m.PublishExpvar()
	srv, err := serve.NewServer(serve.Config{
		Workers:           *workers,
		QueueCap:          *queue,
		CacheBytes:        int64(*cacheMB) << 20,
		MaxBodyBytes:      int64(*maxBodyKB) << 10,
		DefaultDeadline:   *defaultDeadline,
		Debug:             *debug,
		StoreDir:          *storeDir,
		StoreSegmentBytes: int64(*storeSegMB) << 20,
		Prewarm:           *prewarm,
		Cluster:           cluster,
		Metrics:           m,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wampde-server:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wampde-server: listening on %s (workers=%d queue=%d cache=%dMiB store=%q solver-workers=%d)\n",
		ln.Addr(), *workers, *queue, *cacheMB, *storeDir, par.Workers())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "wampde-server:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "wampde-server: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "wampde-server: shutdown:", err)
		}
		srv.Close()
	}
}
