// Command fmrepr regenerates the paper's §3 illustrations — Figures 1–6 —
// and quantifies their sampling-cost arguments:
//
//	Fig 1: the two-tone quasiperiodic signal y(t) (750 univariate samples)
//	Fig 2: its compact bivariate form ŷ(t1,t2) on a 15×15 grid
//	Fig 3: the sawtooth characteristic path in the t1–t2 plane
//	Fig 4: the prototypical FM signal x(t)
//	Fig 5: the unwarped bivariate x̂1 — not compactly representable
//	Fig 6: the warped bivariate x̂2 — compact again
//
// Each figure is printed as an ASCII rendering and optionally written as
// CSV (-csv <dir>).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/textplot"
	"repro/internal/warp"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1-6); 0 = all")
	csvDir := flag.String("csv", "", "directory to write CSV data files into")
	flag.Parse()

	am := warp.AMSignal{T1: 0.02, T2: 1}                   // eq. (1) parameters
	fm := warp.FMSignal{F0: 1e6, F2: 20e3, K: 8 * math.Pi} // eq. (3) parameters

	figs := map[int]func() error{
		1: func() error { return fig1(am, *csvDir) },
		2: func() error { return fig2(am, *csvDir) },
		3: func() error { return fig3(am, *csvDir) },
		4: func() error { return fig4(fm, *csvDir) },
		5: func() error { return fig5(fm, *csvDir) },
		6: func() error { return fig6(fm, *csvDir) },
	}
	run := func(n int) {
		if err := figs[n](); err != nil {
			fmt.Fprintf(os.Stderr, "fmrepr: figure %d: %v\n", n, err)
			os.Exit(1)
		}
	}
	if *fig != 0 {
		if _, ok := figs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "fmrepr: no figure %d\n", *fig)
			os.Exit(2)
		}
		run(*fig)
		return
	}
	for n := 1; n <= 6; n++ {
		run(n)
		fmt.Println()
	}
}

func writeCSV(dir, name string, headers []string, cols ...[]float64) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return textplot.WriteCSV(f, headers, cols...)
}

func fig1(am warp.AMSignal, dir string) error {
	// §3: 15 points per fast sinusoid over one slow period -> 750 samples.
	n := warp.UnivariateSampleCount(am.T1, am.T2, 15)
	ts := make([]float64, n)
	ys := make([]float64, n)
	for i := range ts {
		ts[i] = am.T2 * float64(i) / float64(n-1)
		ys[i] = am.Eval(ts[i])
	}
	p := textplot.NewPlot(fmt.Sprintf("Figure 1: two-tone quasiperiodic y(t), %d univariate samples", n), 72, 16)
	p.XLabel, p.YLabel = "t (s)", "y"
	p.Add(ts, ys, '*')
	fmt.Print(p.Render())
	return writeCSV(dir, "fig01_univariate.csv", []string{"t", "y"}, ts, ys)
}

func fig2(am warp.AMSignal, dir string) error {
	g := warp.SampleGrid(am.Bivariate, 15, 15, am.T1, am.T2)
	fmt.Printf("Figure 2: bivariate ŷ(t1,t2) on a 15x15 grid (%d samples vs 750 univariate)\n", g.NumSamples())
	fmt.Print(textplot.Heatmap("   rows: t2 in [0,1s), cols: t1 in [0,0.02s)", g.Val))
	errRep := warp.RepresentationError(am.Bivariate, 15, 15, am.T1, am.T2)
	fmt.Printf("   15x15 bilinear representation error: %.3f (compact ✓)\n", errRep)
	if dir == "" {
		return nil
	}
	var t1c, t2c, vc []float64
	for j2 := 0; j2 < g.N2; j2++ {
		for j1 := 0; j1 < g.N1; j1++ {
			t1c = append(t1c, am.T1*float64(j1)/float64(g.N1))
			t2c = append(t2c, am.T2*float64(j2)/float64(g.N2))
			vc = append(vc, g.Val[j2][j1])
		}
	}
	return writeCSV(dir, "fig02_bivariate.csv", []string{"t1", "t2", "yhat"}, t1c, t2c, vc)
}

func fig3(am warp.AMSignal, dir string) error {
	t1s, t2s := warp.SawtoothPath(am.T1, am.T2, 0.1, 600)
	p := textplot.NewPlot("Figure 3: sawtooth path {t1 = t mod T1, t2 = t mod T2} (first 0.1 s)", 72, 16)
	p.XLabel, p.YLabel = "t1", "t2"
	p.Add(t1s, t2s, '.')
	fmt.Print(p.Render())
	return writeCSV(dir, "fig03_path.csv", []string{"t1", "t2"}, t1s, t2s)
}

func fig4(fm warp.FMSignal, dir string) error {
	n := 3000
	tEnd := 7e-5
	ts := make([]float64, n)
	ys := make([]float64, n)
	for i := range ts {
		ts[i] = tEnd * float64(i) / float64(n-1)
		ys[i] = fm.Eval(ts[i])
	}
	p := textplot.NewPlot("Figure 4: FM signal x(t) = cos(2π f0 t + k cos(2π f2 t))", 72, 16)
	p.XLabel, p.YLabel = "t (s)", "x"
	p.Add(ts, ys, '*')
	fmt.Print(p.Render())
	return writeCSV(dir, "fig04_fm.csv", []string{"t", "x"}, ts, ys)
}

func fig5(fm warp.FMSignal, dir string) error {
	g := warp.SampleGrid(fm.Unwarped, 30, 30, 1/fm.F0, 1/fm.F2)
	fmt.Println("Figure 5: unwarped bivariate x̂1(t1,t2) — dense undulations along t2")
	fmt.Print(textplot.Heatmap("   rows: t2, cols: t1", g.Val))
	e15 := warp.RepresentationError(fm.Unwarped, 15, 15, 1/fm.F0, 1/fm.F2)
	fmt.Printf("   15x15 representation error: %.3f (NOT compact ✗; k/2π ≈ %.0f undulations)\n",
		e15, fm.K/(2*math.Pi))
	if dir == "" {
		return nil
	}
	var t1c, t2c, vc []float64
	for j2 := 0; j2 < g.N2; j2++ {
		for j1 := 0; j1 < g.N1; j1++ {
			t1c = append(t1c, float64(j1)/float64(g.N1)/fm.F0)
			t2c = append(t2c, float64(j2)/float64(g.N2)/fm.F2)
			vc = append(vc, g.Val[j2][j1])
		}
	}
	return writeCSV(dir, "fig05_unwarped.csv", []string{"t1", "t2", "xhat1"}, t1c, t2c, vc)
}

func fig6(fm warp.FMSignal, dir string) error {
	g := warp.SampleGrid(fm.Warped, 15, 15, 1, 1/fm.F2)
	fmt.Println("Figure 6: warped bivariate x̂2(t1,t2) = cos(2π t1) — compact again")
	fmt.Print(textplot.Heatmap("   rows: t2, cols: warped t1", g.Val))
	e15 := warp.RepresentationError(fm.Warped, 15, 15, 1, 1/fm.F2)
	fmt.Printf("   15x15 representation error: %.4f (compact ✓)\n", e15)
	// Demonstrate exact reconstruction along the warped path, eq. (8).
	worst := 0.0
	for i := 0; i <= 500; i++ {
		t := 5e-5 * float64(i) / 500
		d := math.Abs(warp.Reconstruct(fm.Warped, fm.Phi, t) - fm.Eval(t))
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("   max |x̂2(φ(t),t) − x(t)| over [0,50µs]: %.2e (eq. (8) ✓)\n", worst)
	if dir == "" {
		return nil
	}
	ts := make([]float64, 500)
	phi := make([]float64, 500)
	freq := make([]float64, 500)
	for i := range ts {
		ts[i] = 5e-5 * float64(i) / 499
		phi[i] = fm.Phi(ts[i])
		freq[i] = fm.LocalFreq(ts[i])
	}
	return writeCSV(dir, "fig06_warp.csv", []string{"t", "phi", "localfreq"}, ts, phi, freq)
}
