package wampde_test

// Regression guards for the hot-loop allocation budget and the chord-Newton
// factorization-reuse policy. The benchmarks in bench_test.go measure these
// properties; the tests here lock them in so `go test ./...` catches a
// regression without anyone reading benchmark output.

import (
	"math"
	"testing"

	wampde "repro"
	"repro/internal/core"
	"repro/internal/par"
)

// fig7IC computes the Fig. 7 (vacuum, N1=25) initial condition once per test
// that needs it, outside any measured region.
func fig7IC(t *testing.T) (*wampde.VCO, []float64, float64) {
	t.Helper()
	vco, err := wampde.NewPaperVCO(false)
	if err != nil {
		t.Fatal(err)
	}
	u0 := vco.StaticDisplacement(vco.Params.VCtl(0))
	ic, w0, err := core.InitialCondition(vco, []float64{0.5, 0, u0, 0}, 1/wampde.VCONominalFreq, core.ICOptions{N1: 25})
	if err != nil {
		t.Fatal(err)
	}
	return vco, ic, w0
}

// TestHotLoopAllocBudget pins the envelope solver's allocation budget: one
// Fig. 7 run (400 t2 steps) at one worker must stay within a fixed number of
// heap allocations. With the FFT plans, LU/Newton workspaces, Jacobian slots
// and parallel kernels all persisting across steps, the measured cost is
// ~1.6 allocations per accepted step (the per-point result records dominate);
// the budget below leaves ~4x headroom for runtime noise while still sitting
// far under the tens of thousands the per-step churn used to cost.
func TestHotLoopAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full Fig. 7 envelope run")
	}
	vco, ic, w0 := fig7IC(t)
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)

	const t2End = 60e-6
	opt := core.EnvelopeOptions{N1: 25, H2: t2End / 400, Trap: true}
	allocs := testing.AllocsPerRun(1, func() {
		res, err := core.Envelope(vco, ic, w0, t2End, opt)
		if err != nil {
			t.Error(err)
			return
		}
		sinkF = res.Omega[len(res.Omega)-1]
	})
	const budget = 2500
	if allocs > budget {
		t.Errorf("Fig. 7 envelope run allocated %.0f objects, budget %d", allocs, budget)
	}
}

// TestChordNewtonReducesFactorizations checks the chord-Newton acceptance
// criteria on the Fig. 7 pipeline: carrying the factorization across t2 steps
// must cut the number of Jacobian factorizations without blowing up the
// iteration count (each reused-Jacobian iteration is far cheaper than a
// factorization, so a modest iteration increase is the expected trade), and
// the computed envelope must agree with the fresh-factorization run to well
// within the Newton tolerance.
func TestChordNewtonReducesFactorizations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping envelope runs")
	}
	vco, ic, w0 := fig7IC(t)

	const t2End = 60e-6
	base := core.EnvelopeOptions{N1: 25, H2: t2End / 400, Trap: true}
	chordOpt := base
	chordOpt.ChordNewton = true

	def, err := core.Envelope(vco, ic, w0, t2End, base)
	if err != nil {
		t.Fatal(err)
	}
	chord, err := core.Envelope(vco, ic, w0, t2End, chordOpt)
	if err != nil {
		t.Fatal(err)
	}

	if def.JacobianReuses == 0 || chord.JacobianReuses == 0 {
		t.Errorf("expected within-solve factorization reuse in both modes, got default=%d chord=%d",
			def.JacobianReuses, chord.JacobianReuses)
	}
	if chord.JacobianEvals >= def.JacobianEvals {
		t.Errorf("chord mode factored %d Jacobians, default %d; want strictly fewer",
			chord.JacobianEvals, def.JacobianEvals)
	}
	if lim := def.NewtonIterTotal + (def.NewtonIterTotal+4)/5; chord.NewtonIterTotal > lim {
		t.Errorf("chord mode took %d Newton iterations, default %d; want at most +20%% (%d)",
			chord.NewtonIterTotal, def.NewtonIterTotal, lim)
	}

	// Same t2 grid (fixed steps, both runs accept every step) and matching
	// frequency trajectory: both solutions satisfy the same relative residual
	// tolerance, so ω may differ only at that level.
	if len(def.T2) != len(chord.T2) {
		t.Fatalf("step counts differ: default %d, chord %d", len(def.T2), len(chord.T2))
	}
	for i := range def.Omega {
		if d := math.Abs(def.Omega[i] - chord.Omega[i]); d > 1e-4*math.Abs(def.Omega[i]) {
			t.Errorf("omega[%d] differs beyond tolerance: default %.12g, chord %.12g", i, def.Omega[i], chord.Omega[i])
		}
	}
	t.Logf("factorizations: default %d, chord %d (%.1fx fewer); Newton iterations: %d vs %d",
		def.JacobianEvals, chord.JacobianEvals,
		float64(def.JacobianEvals)/float64(chord.JacobianEvals),
		def.NewtonIterTotal, chord.NewtonIterTotal)
}

// TestRecycleReducesMatvecs checks the Krylov-recycling acceptance criteria on
// the Fig. 7 GMRES pipeline (ChordNewton on, the cmd-driver configuration):
// carrying the GCRO-DR deflation space across solves must strictly cut the
// total matvec count, leave the Newton trajectory untouched (every solve still
// converges to GMRESTol, so the recycled run is the same computation with
// cheaper linear algebra), and reproduce the frequency envelope to well within
// the Newton tolerance.
func TestRecycleReducesMatvecs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping envelope runs")
	}
	vco, ic, w0 := fig7IC(t)

	const t2End = 60e-6
	base := core.EnvelopeOptions{
		N1: 25, H2: t2End / 400, Trap: true,
		Linear: core.LinearGMRES, ChordNewton: true,
	}
	recOpt := base
	recOpt.RecycleKrylov = true

	def, err := core.Envelope(vco, ic, w0, t2End, base)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.Envelope(vco, ic, w0, t2End, recOpt)
	if err != nil {
		t.Fatal(err)
	}

	if def.GMRESSolves == 0 || def.GMRESMatVecs == 0 {
		t.Fatalf("default GMRES run recorded no iterative-solver work: solves=%d matvecs=%d",
			def.GMRESSolves, def.GMRESMatVecs)
	}
	if rec.RecycleHits == 0 || rec.RecycleHarvests == 0 {
		t.Errorf("recycling never engaged: hits=%d harvests=%d", rec.RecycleHits, rec.RecycleHarvests)
	}
	if rec.RecycleInvalidations == 0 {
		t.Error("recycler was never invalidated: the Jacobian-refresh hook is not wired")
	}
	if rec.GMRESMatVecs >= def.GMRESMatVecs {
		t.Errorf("recycling cost %d matvecs, default %d; want strictly fewer",
			rec.GMRESMatVecs, def.GMRESMatVecs)
	}

	if len(def.T2) != len(rec.T2) {
		t.Fatalf("step counts differ: default %d, recycled %d", len(def.T2), len(rec.T2))
	}
	for i := range def.Omega {
		if d := math.Abs(def.Omega[i] - rec.Omega[i]); d > 1e-4*math.Abs(def.Omega[i]) {
			t.Errorf("omega[%d] differs beyond tolerance: default %.12g, recycled %.12g", i, def.Omega[i], rec.Omega[i])
		}
	}
	t.Logf("GMRES matvecs: default %d, recycled %d (%.1f%% fewer); hits=%d harvests=%d invalidations=%d",
		def.GMRESMatVecs, rec.GMRESMatVecs,
		100*(1-float64(rec.GMRESMatVecs)/float64(def.GMRESMatVecs)),
		rec.RecycleHits, rec.RecycleHarvests, rec.RecycleInvalidations)
}
