package wampde

import (
	"context"
	"math"
	"testing"
)

// TestTuningSweepWarmMatchesCold is the offline warm-start contract: a
// warm-continued tuning sweep visits every point without a single fallback
// and reproduces the cold sweep's frequencies to solver tolerance.
func TestTuningSweepWarmMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning sweep runs real shooting solves")
	}
	vals := []float64{2.1, 1.2, 1.8, 1.5} // deliberately unsorted

	cold, err := TuningSweep(TuningSweepConfig{Values: vals, Cold: true})
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	warm, err := TuningSweep(TuningSweepConfig{Values: vals})
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}

	if len(cold.Points) != len(vals) || len(warm.Points) != len(vals) {
		t.Fatalf("point counts: cold %d warm %d, want %d", len(cold.Points), len(warm.Points), len(vals))
	}
	// Continuation order: ascending control voltage, original indexes kept.
	wantV := []float64{1.2, 1.5, 1.8, 2.1}
	wantIdx := []int{1, 3, 2, 0}
	for i, p := range warm.Points {
		if p.VCtl != wantV[i] || p.Index != wantIdx[i] {
			t.Fatalf("point %d = vctl %g index %d, want %g %d", i, p.VCtl, p.Index, wantV[i], wantIdx[i])
		}
	}

	// One chain: the first point is cold, every later one adopts the
	// neighbor's orbit, and none falls back.
	if warm.WarmUses != len(vals)-1 || warm.Fallbacks != 0 {
		t.Fatalf("warm uses = %d fallbacks = %d, want %d and 0", warm.WarmUses, warm.Fallbacks, len(vals)-1)
	}
	if warm.Points[0].Warm != "cold" {
		t.Fatalf("chain start = %q, want cold", warm.Points[0].Warm)
	}
	for _, p := range cold.Points {
		if p.Warm != "cold" {
			t.Fatalf("cold sweep produced a %q point", p.Warm)
		}
	}

	// Warm and cold converge to the same limit cycle.
	for i := range cold.Points {
		c, w := cold.Points[i], warm.Points[i]
		if rel := math.Abs(w.Freq-c.Freq) / c.Freq; rel > 1e-6 {
			t.Fatalf("vctl %g: warm freq %.6f MHz vs cold %.6f MHz (rel %.2e)",
				c.VCtl, w.Freq/1e6, c.Freq/1e6, rel)
		}
		if !(c.Freq > 0) || math.IsInf(c.Freq, 0) {
			t.Fatalf("vctl %g: bad frequency %g", c.VCtl, c.Freq)
		}
	}
	// The §5 varactor tunes upward: more control force, smaller capacitance.
	for i := 1; i < len(cold.Points); i++ {
		if cold.Points[i].Freq <= cold.Points[i-1].Freq {
			t.Fatalf("tuning curve not increasing: f(%g)=%.0f, f(%g)=%.0f",
				cold.Points[i-1].VCtl, cold.Points[i-1].Freq,
				cold.Points[i].VCtl, cold.Points[i].Freq)
		}
	}
}

// TestTuningSweepLanes: lane count changes scheduling, not results — each
// lane runs its own continuation chain over a contiguous segment.
func TestTuningSweepLanes(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning sweep runs real shooting solves")
	}
	cfg := TuningSweepConfig{From: 1.2, To: 2.2, Points: 6}
	one, err := TuningSweep(cfg)
	if err != nil {
		t.Fatalf("lanes=1: %v", err)
	}
	cfg.Lanes = 3
	three, err := TuningSweep(cfg)
	if err != nil {
		t.Fatalf("lanes=3: %v", err)
	}
	if len(one.Points) != 6 || len(three.Points) != 6 {
		t.Fatalf("point counts %d/%d, want 6", len(one.Points), len(three.Points))
	}
	// Three chains → three cold chain starts, the rest warm.
	if three.WarmUses != 3 || three.Fallbacks != 0 {
		t.Fatalf("lanes=3 warm uses = %d fallbacks = %d, want 3 and 0", three.WarmUses, three.Fallbacks)
	}
	for i := range one.Points {
		a, b := one.Points[i], three.Points[i]
		if a.VCtl != b.VCtl {
			t.Fatalf("point %d order differs: %g vs %g", i, a.VCtl, b.VCtl)
		}
		if rel := math.Abs(a.Freq-b.Freq) / a.Freq; rel > 1e-6 {
			t.Fatalf("vctl %g: lanes=1 freq %.6f MHz vs lanes=3 %.6f MHz (rel %.2e)",
				a.VCtl, a.Freq/1e6, b.Freq/1e6, rel)
		}
	}
}

func TestTuningSweepRejectsBadConfig(t *testing.T) {
	cases := []TuningSweepConfig{
		{}, // nothing swept
		{Values: []float64{1, 2}, Points: 3, From: 1, To: 2}, // both
		{From: 1, To: 1, Points: 4},                          // degenerate grid
		{From: 1, To: 2, Points: 1},                          // one-point grid
		{Values: []float64{1.5, 1.5}},                        // duplicate values
		{Values: []float64{math.NaN()}},                      // non-finite
	}
	for i, cfg := range cases {
		if _, err := TuningSweep(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestTuningSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TuningSweep(TuningSweepConfig{Values: []float64{1.5, 1.8}, Ctx: ctx})
	if err == nil {
		t.Fatal("canceled sweep returned no error")
	}
}

// BenchmarkTuningSweepWarm and ...Cold measure the sweep amortization the
// warm carrier buys: the settling transient is the dominant per-point cost
// and warm points skip it.
func BenchmarkTuningSweepWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := TuningSweep(TuningSweepConfig{From: 1.3, To: 2.1, Points: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTuningSweepCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := TuningSweep(TuningSweepConfig{From: 1.3, To: 2.1, Points: 5, Cold: true}); err != nil {
			b.Fatal(err)
		}
	}
}
